//! Campaign runner — one vehicle, one fault scenario, both diagnoses.
//!
//! A [`Campaign`] bundles a cluster specification, the faults to inject,
//! the rate acceleration and the horizon; [`run_campaign`] executes it with
//! the integrated diagnostic engine *and* the federated OBD baseline
//! observing the same slot records, so every experiment compares like for
//! like.

use decos_analyzer::{analyze, AnalysisReport, ExperimentSpec};
use decos_diagnosis::{
    DiagnosticEngine, DiagnosticReport, DisseminationStats, EngineParams, ObdDiagnosis, ObdParams,
    ObdReport,
};
use decos_faults::{FaultEnvironment, FaultSpec, FruRef};
use decos_platform::{ClusterSim, ClusterSpec, SlotObserver, SlotRecord, SpecError};
use decos_sim::flightrec::{self, FaultLifecycle, FlightRecording, NO_COMPONENT};
use decos_sim::rng::SeedSource;
use decos_sim::telemetry::{Counter, CounterSet, Gauge, GaugeSet, TelemetrySnapshot};
use decos_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Why a campaign refused to run.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The cluster specification is structurally broken.
    Spec(SpecError),
    /// The static analyzer found error-severity diagnostics; the full
    /// report (errors, warnings and notes) is attached.
    Rejected(AnalysisReport),
}

impl core::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CampaignError::Spec(e) => write!(f, "invalid cluster specification: {e:?}"),
            CampaignError::Rejected(report) => {
                write!(f, "experiment rejected by static analysis:\n{report}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SpecError> for CampaignError {
    fn from(e: SpecError) -> Self {
        CampaignError::Spec(e)
    }
}

/// A complete scenario description.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The cluster (possibly carrying configuration defects).
    pub spec: ClusterSpec,
    /// Faults to inject.
    pub faults: Vec<FaultSpec>,
    /// Rate acceleration factor for episodic faults.
    pub accel: f64,
    /// Horizon in TDMA rounds.
    pub rounds: u64,
    /// Master seed (cluster, workload and injection streams derive from
    /// it).
    pub seed: u64,
}

impl Campaign {
    /// A campaign over the Fig. 10 reference cluster.
    pub fn reference(faults: Vec<FaultSpec>, accel: f64, rounds: u64, seed: u64) -> Self {
        Campaign { spec: decos_platform::fig10::reference_spec(), faults, accel, rounds, seed }
    }

    /// Statically analyzes this campaign under the given engine parameters.
    ///
    /// Every `run_campaign*` entry point calls this and refuses to simulate
    /// when the report carries error-severity diagnostics; call it directly
    /// to inspect warnings and notes of a runnable experiment.
    pub fn analyze(&self, params: &EngineParams) -> AnalysisReport {
        let mut exp =
            ExperimentSpec::with_campaign(&self.spec, &self.faults, self.accel, self.rounds);
        exp.ona = params.ona;
        exp.trust = params.trust;
        exp.advisor = params.advisor;
        analyze(&exp)
    }
}

/// Everything a campaign produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// The integrated diagnosis report.
    pub report: DiagnosticReport,
    /// The OBD baseline's workshop decision.
    pub obd: ObdReport,
    /// Diagnostic-network delivery statistics.
    pub dissemination: DisseminationStats,
    /// The injected ground truth.
    pub injected: Vec<FaultSpec>,
    /// Ground-truth manifestation episodes observed.
    pub episodes: usize,
    /// Simulated horizon in seconds.
    pub sim_seconds: f64,
    /// Pipeline telemetry ([`RunOptions::telemetry`]); `None` when off.
    /// Counters and gauges are deterministic per seed; phase timings are
    /// wall-clock and excluded from the determinism contract.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Per-fault lifecycle records — onset→first-symptom, onset→first-ONA,
    /// onset→conviction latencies in rounds plus FRU attribution. Present
    /// when either [`RunOptions::telemetry`] or [`RunOptions::flightrec`]
    /// is on; fully deterministic per seed.
    pub lifecycle: Option<FaultLifecycle>,
    /// The retained flight-recorder event ring
    /// ([`RunOptions::flightrec`]); `None` when off. Deterministic per
    /// seed.
    pub trace: Option<FlightRecording>,
}

/// Optional behaviours of a campaign run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Collect registry-keyed counters and per-phase wall-time spans over
    /// the whole slot pipeline and attach a [`TelemetrySnapshot`] to the
    /// outcome. Off by default: uninstrumented runs never read the wall
    /// clock and the steady-state loop stays allocation-free.
    pub telemetry: bool,
    /// Record the fault-lifecycle event trace into a bounded ring and
    /// attach a [`FlightRecording`] to the outcome. Off by default; when
    /// on, the ring is preallocated once and steady-state recording stays
    /// allocation-free. Telemetry alone already runs the (ring-less)
    /// lifecycle fold for the latency metrics.
    pub flightrec: bool,
    /// Route every slot through the legacy per-slot simulation body,
    /// ignoring the environment's quiescence/disturbance hints (see
    /// [`ClusterSim::force_legacy_path`]). The outcome is bit-identical by
    /// contract; equivalence tests pin that contract with this switch.
    pub legacy_paths: bool,
    /// Escalate the analyzer's DA080-series diagnosability verdicts from
    /// warnings to rejection: refuse to simulate a campaign whose fault
    /// hypotheses are observation-equivalent (DA080), invisible to the ONA
    /// bank (DA081), or unconvictable within the horizon (DA082). Off by
    /// default — such campaigns still measure something (often
    /// deliberately); opt in when the experiment's claim *is* the pinned
    /// FRU.
    pub deny_diagnosability: bool,
}

/// Runs a campaign.
pub fn run_campaign(c: &Campaign) -> Result<CampaignOutcome, CampaignError> {
    run_campaign_with(c, |_, _, _| {})
}

/// Runs a campaign with a per-slot observer (for trajectory sampling and
/// custom instrumentation). The observer sees the cluster, the engine and
/// the slot record *after* both diagnoses ingested it.
pub fn run_campaign_with(
    c: &Campaign,
    observe: impl FnMut(&ClusterSim, &DiagnosticEngine, &SlotRecord),
) -> Result<CampaignOutcome, CampaignError> {
    run_campaign_with_params(c, EngineParams::default(), observe)
}

/// Runs a campaign with explicit engine parameters (ablations, tuning).
pub fn run_campaign_with_params(
    c: &Campaign,
    params: EngineParams,
    observe: impl FnMut(&ClusterSim, &DiagnosticEngine, &SlotRecord),
) -> Result<CampaignOutcome, CampaignError> {
    run_campaign_observed(c, params, &mut [], observe)
}

/// Runs a campaign with additional [`SlotObserver`]s riding along.
///
/// The integrated engine and the OBD baseline are always present (they
/// produce the [`CampaignOutcome`]); `extras` — metrics recorders, probes,
/// custom accumulators — see every record right after them, in order.
/// Records are a *reused buffer*: observers must copy anything they keep.
pub fn run_campaign_observed(
    c: &Campaign,
    params: EngineParams,
    extras: &mut [&mut dyn SlotObserver],
    observe: impl FnMut(&ClusterSim, &DiagnosticEngine, &SlotRecord),
) -> Result<CampaignOutcome, CampaignError> {
    run_campaign_opts(c, params, RunOptions::default(), extras, observe)
}

/// Runs a campaign with explicit [`RunOptions`] (telemetry opt-in) on top
/// of the full observer stack of
/// [`run_campaign_observed`](run_campaign_observed).
pub fn run_campaign_opts(
    c: &Campaign,
    params: EngineParams,
    opts: RunOptions,
    extras: &mut [&mut dyn SlotObserver],
    mut observe: impl FnMut(&ClusterSim, &DiagnosticEngine, &SlotRecord),
) -> Result<CampaignOutcome, CampaignError> {
    // Static model check first: refuse to simulate an experiment whose
    // outcome would be structurally meaningless (or would crash mid-run).
    let analysis = c.analyze(&params);
    if analysis.has_errors() {
        return Err(CampaignError::Rejected(analysis));
    }
    // The diagnosability verdicts are warnings by default; the caller can
    // harden the gate when the experiment stands on distinguishable faults.
    if opts.deny_diagnosability && analysis.diagnostics.iter().any(|d| d.code.is_diagnosability()) {
        return Err(CampaignError::Rejected(analysis));
    }
    let mut sim = ClusterSim::new(c.spec.clone(), c.seed)?;
    let mut env = FaultEnvironment::for_cluster(
        c.faults.clone(),
        &c.spec,
        c.accel,
        SeedSource::new(c.seed).child(1),
    );
    let mut engine = DiagnosticEngine::try_new(&sim, params)?;
    // Decorrelate the diagnostic path's transit randomness from the
    // workload/injection streams (and between fleet vehicles).
    let mut diag_seed = c.seed ^ 0xD1A6_0000_0000_0000;
    engine.reseed_diag(decos_sim::rng::splitmix64(&mut diag_seed));
    let mut obd = ObdDiagnosis::new(&sim, ObdParams::default());
    if opts.telemetry {
        sim.enable_telemetry();
        engine.enable_telemetry();
    }
    // The lifecycle fold runs whenever latency metrics are wanted
    // (telemetry) or events are kept (flightrec); the ring itself is only
    // paid for under `flightrec`.
    let lifecycle_on = opts.telemetry || opts.flightrec;
    if lifecycle_on {
        engine.enable_flightrec(if opts.flightrec { flightrec::DEFAULT_CAPACITY } else { 0 });
        for f in &c.faults {
            let comp = match f.target {
                FruRef::Component(n) => n.0,
                FruRef::Job(j) => {
                    c.spec.jobs.iter().find(|js| js.id == j).map_or(NO_COMPONENT, |js| js.host.0)
                }
            };
            engine.flightrec_mut().register_fault(f.id, comp, f.kind.is_diag_path());
        }
    }
    // Ground-truth watchers for fault-injected/cleared events: continuous
    // kinds fire once at onset; episodic kinds follow the environment's
    // activation windows (cleared on expiry, re-injected per episode).
    let mut pending_continuous: Vec<(u32, SimTime)> = if lifecycle_on {
        c.faults.iter().filter(|f| !f.kind.is_episodic()).map(|f| (f.id, f.onset)).collect()
    } else {
        Vec::new()
    };
    let mut active_windows: Vec<(u32, SimTime)> = Vec::new();
    let mut seen_windows = 0usize;

    // Runtime mirrors of the statically checked invariants (debug builds
    // only): the records the observers consume must agree with the model
    // the analyzer approved.
    #[cfg(debug_assertions)]
    let deployed_ids: Vec<decos_vnet::VnetId> =
        c.spec.deployed_vnets().iter().map(|v| v.id).collect();
    let n_components = c.spec.n_components();

    sim.force_legacy_path(opts.legacy_paths);
    let spr = sim.schedule().slots_per_round();
    let slots = c.rounds * spr as u64;
    let mut rec = SlotRecord::empty();
    // Round-batched dispatch: the cluster drives a whole precomputed round
    // per call (probing the environment once for quiescence) and feeds
    // every record to this per-slot observer chain. The environment comes
    // back through the sink so the diagnostic-path bridge below sees the
    // state `begin_slot` just established.
    for _ in 0..c.rounds {
        sim.step_round_with(&mut env, &mut rec, &mut |sim, env, rec| {
            debug_assert_eq!(
                rec.observations.len(),
                n_components,
                "slot record must carry one observation per component"
            );
            debug_assert_eq!(
                rec.owner,
                sim.schedule().owner(rec.addr.slot),
                "slot ownership must follow the analyzed TDMA table"
            );
            #[cfg(debug_assertions)]
            debug_assert!(
                rec.sent.iter().all(|(v, _)| deployed_ids.contains(v)),
                "transmitted segments must belong to deployed vnets"
            );
            if lifecycle_on {
                let (round, slot) = (rec.addr.round, rec.addr.slot.0);
                let mut i = 0;
                while i < pending_continuous.len() {
                    if rec.start >= pending_continuous[i].1 {
                        engine.flightrec_mut().fault_injected(pending_continuous[i].0, round, slot);
                        pending_continuous.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                // Expire before scanning for new windows, so a same-slot
                // re-activation is recorded cleared-then-injected.
                let mut i = 0;
                while i < active_windows.len() {
                    if rec.start >= active_windows[i].1 {
                        engine.flightrec_mut().fault_cleared(active_windows[i].0, round, slot);
                        active_windows.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                while seen_windows < env.log().windows.len() {
                    let w = env.log().windows[seen_windows];
                    seen_windows += 1;
                    engine.flightrec_mut().fault_injected(w.fault_id, round, slot);
                    if w.until < SimTime::MAX {
                        active_windows.push((w.fault_id, w.until));
                    }
                }
            }
            // The diagnostic path is itself subject to the fault model:
            // bridge the environment's active path disturbance into the
            // engine.
            engine.inject_disturbance(env.diag_disturbance());
            engine.on_slot(sim, rec);
            obd.on_slot(sim, rec);
            for ex in extras.iter_mut() {
                ex.on_slot(sim, rec);
            }
            if rec.addr.slot.0 == spr - 1 {
                engine.on_round_end(sim, rec);
                obd.on_round_end(sim, rec);
                for ex in extras.iter_mut() {
                    ex.on_round_end(sim, rec);
                }
            }
            observe(sim, &engine, rec);
        });
    }
    let end = sim.now();
    let report = engine.report();
    let lifecycle = lifecycle_on.then(|| engine.flightrec().lifecycle());
    let trace = opts.flightrec.then(|| engine.flightrec().recording());
    let telemetry = opts
        .telemetry
        .then(|| assemble_telemetry(&sim, &engine, &report, c.rounds, slots, lifecycle.as_ref()));
    Ok(CampaignOutcome {
        obd: obd.report(end),
        dissemination: engine.dissemination_stats(),
        injected: c.faults.clone(),
        episodes: env.log().windows.len(),
        sim_seconds: end.as_secs_f64(),
        telemetry,
        lifecycle,
        trace,
        report,
    })
}

/// Builds the campaign-level [`TelemetrySnapshot`]: the full counter
/// registry filled from the engine's authoritative statistics, quality as
/// a gauge, and the merged simulation + diagnosis phase spans.
fn assemble_telemetry(
    sim: &ClusterSim,
    engine: &DiagnosticEngine,
    report: &DiagnosticReport,
    rounds: u64,
    slots: u64,
    lifecycle: Option<&FaultLifecycle>,
) -> TelemetrySnapshot {
    let stats = engine.dissemination_stats();
    let mut counters = CounterSet::new();
    counters.set(Counter::SlotsSimulated, slots);
    counters.set(Counter::RoundsSimulated, rounds);
    counters.set(Counter::SymptomsOffered, stats.offered);
    counters.set(Counter::SymptomsDelivered, stats.delivered);
    counters.set(Counter::SymptomsDropped, stats.dropped);
    counters.set(Counter::FramesCorrupted, stats.corrupted);
    counters.set(Counter::FramesRejected, stats.rejected);
    counters.set(Counter::FramesDelayed, stats.delayed);
    counters.set(Counter::FramesForgedSuspected, stats.forged_suspected);
    counters.set(Counter::OnaMatches, engine.ona_matches());
    counters.set(Counter::TrustFrozenRounds, engine.frozen_rounds());
    counters.set(Counter::Failovers, u64::from(engine.failovers()));
    counters.set(Counter::CrashedRounds, engine.crashed_rounds());
    counters.set(Counter::Vehicles, 1);
    counters.set(Counter::DegradedVehicles, u64::from(report.degraded));
    let mut gauges = GaugeSet::new();
    gauges.set(Gauge::DeliveryQuality, report.delivery_quality);
    if let Some(lc) = lifecycle {
        counters.set(Counter::FaultsInjected, lc.faults_injected());
        counters.set(Counter::FaultsDetected, lc.faults_detected());
        counters.set(Counter::FaultsConvicted, lc.faults_convicted());
        counters.set(Counter::WrongFruConvictions, lc.wrong_fru_convictions);
        counters.set(Counter::DetectLatencyRounds, lc.detect_latency_total());
        counters.set(Counter::ConvictLatencyRounds, lc.convict_latency_total());
        gauges.set(Gauge::DetectLatency, lc.mean_detect_latency());
        gauges.set(Gauge::ConvictLatency, lc.mean_convict_latency());
    }
    let mut spans = *sim.telemetry_spans();
    spans.merge(engine.telemetry_spans());
    TelemetrySnapshot::assemble(&counters, &gauges, &spans)
}

/// Per-FRU trust trajectory: `(seconds, trust)` samples per sampled FRU.
pub type TrustSeries = Vec<(FruRef, Vec<(f64, f64)>)>;

/// Samples the trust trajectory of selected FRUs every `every_rounds`
/// rounds. Returns, per FRU, the series of (seconds, trust).
pub fn trust_trajectories(
    c: &Campaign,
    frus: &[FruRef],
    every_rounds: u64,
) -> Result<TrustSeries, CampaignError> {
    let mut series: TrustSeries = frus.iter().map(|f| (*f, Vec::new())).collect();
    run_campaign_with(c, |sim, engine, rec| {
        // Sample on the last slot of every `every_rounds`-th round. The
        // cadence must come from the schedule, not the component count —
        // the two only coincide on clusters with one slot per component.
        let spr = sim.schedule().slots_per_round();
        if rec.addr.slot.0 == spr - 1 && (rec.addr.round + 1) % every_rounds == 0 {
            for (fru, s) in series.iter_mut() {
                s.push((rec.start.as_secs_f64(), engine.trust_of(*fru)));
            }
        }
    })?;
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decos_platform::fig10;
    use decos_platform::NodeId;

    #[test]
    fn campaign_runs_end_to_end() {
        let c = Campaign::reference(
            decos_faults::campaign::connector_campaign(NodeId(2), 2000.0),
            10.0,
            1000,
            5,
        );
        let out = run_campaign(&c).unwrap();
        assert!(out.episodes > 0);
        assert!(out.sim_seconds > 3.9);
        assert!(out.dissemination.offered > 0);
        assert!(!out.report.verdicts.is_empty());
    }

    #[test]
    fn campaign_is_deterministic() {
        let c = Campaign::reference(
            decos_faults::campaign::wearout_campaign(NodeId(1), 500.0, 100_000.0),
            1.0,
            800,
            9,
        );
        let a = run_campaign(&c).unwrap();
        let b = run_campaign(&c).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.obd, b.obd);
        assert_eq!(a.episodes, b.episodes);
    }

    #[test]
    fn analyzer_gate_refuses_broken_campaigns() {
        use decos_analyzer::DiagCode;
        use decos_faults::FaultKind;
        use decos_sim::time::SimTime;
        // A fault aimed at a component that does not exist would panic the
        // fault environment mid-run; the gate must reject it up front with
        // the full analysis attached.
        let c = Campaign::reference(
            vec![decos_faults::FaultSpec {
                id: 1,
                kind: FaultKind::CosmicRaySeu { rate_per_hour: 100.0 },
                target: FruRef::Component(NodeId(99)),
                onset: SimTime::ZERO,
            }],
            1.0,
            100,
            7,
        );
        match run_campaign(&c) {
            Err(CampaignError::Rejected(report)) => {
                assert!(report.contains(DiagCode::UnknownFaultTarget), "{report}");
                assert!(report.has_errors());
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn deny_diagnosability_escalates_da080_warnings() {
        use decos_analyzer::DiagCode;
        use decos_faults::FaultKind;
        use decos_sim::time::SimTime;
        // A recurring environmental disturbance and a residual IC defect at
        // the same component are observation-equivalent: DA080 at warning
        // level, so the default gate lets the campaign run…
        let ambiguous = Campaign::reference(
            vec![
                decos_faults::FaultSpec {
                    id: 1,
                    kind: FaultKind::CosmicRaySeu { rate_per_hour: 20_000.0 },
                    target: FruRef::Component(NodeId(1)),
                    onset: SimTime::ZERO,
                },
                decos_faults::FaultSpec {
                    id: 2,
                    kind: FaultKind::IcTransient { rate_per_hour: 20_000.0, duration_ms: 4.0 },
                    target: FruRef::Component(NodeId(1)),
                    onset: SimTime::ZERO,
                },
            ],
            10.0,
            400,
            11,
        );
        let analysis = ambiguous.analyze(&EngineParams::default());
        assert!(analysis.contains(DiagCode::FaultPairIndistinguishable), "{analysis}");
        assert!(!analysis.has_errors(), "diagnosability verdicts stay warnings: {analysis}");
        assert!(run_campaign(&ambiguous).is_ok(), "default gate must not reject");
        // …while the hardened gate refuses it, attaching the full report.
        let opts = RunOptions { deny_diagnosability: true, ..RunOptions::default() };
        match run_campaign_opts(&ambiguous, EngineParams::default(), opts, &mut [], |_, _, _| {}) {
            Err(CampaignError::Rejected(report)) => {
                assert!(report.contains(DiagCode::FaultPairIndistinguishable), "{report}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // A distinguishable campaign passes the hardened gate untouched.
        let clean = Campaign::reference(
            decos_faults::campaign::connector_campaign(NodeId(2), 2000.0),
            10.0,
            400,
            11,
        );
        assert!(
            run_campaign_opts(&clean, EngineParams::default(), opts, &mut [], |_, _, _| {}).is_ok()
        );
    }

    #[test]
    fn trajectories_are_sampled() {
        let c = Campaign::reference(vec![], 1.0, 200, 3);
        let frus = [FruRef::Component(NodeId(0)), FruRef::Job(fig10::jobs::A1)];
        let series = trust_trajectories(&c, &frus, 10).unwrap();
        assert_eq!(series.len(), 2);
        assert!(series[0].1.len() >= 19);
        assert!(series[0].1.iter().all(|&(_, t)| t == 1.0), "healthy FRU stays at 1.0");
    }
}
