//! Sharded work-stealing execution over a dense index space.
//!
//! The fleet path needs two properties the vendored rayon stand-in's
//! static contiguous split cannot give it at 10⁶ vehicles:
//!
//! 1. **Streaming aggregation** — a shard folds each finished item into
//!    its own accumulator immediately instead of materializing a
//!    fleet-sized `Vec` of per-item results.
//! 2. **Work stealing** — shards pull fixed-size index *blocks* from a
//!    shared atomic cursor, so a straggler block (an expensive vehicle)
//!    idles one shard for one block, not a whole contiguous range.
//!
//! Determinism contract: blocks are dealt in ascending order and each
//! block is processed front-to-back by exactly one shard, so the set of
//! `(block, shard)` assignments varies between runs but the *per-block*
//! fold order never does. Aggregates that are order-invariant across
//! blocks (integer counters) — or that the caller folds back together in
//! ascending block order (see `FleetAccumulator`'s block-indexed float
//! sums) — are therefore bit-identical for any shard count, including 1.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Runs `work` over `0..items` split into `block`-sized index blocks,
/// dealt to `shards` worker threads through an atomic cursor.
///
/// `init` builds one accumulator per shard; `work` processes one
/// ascending index block into the shard's accumulator. Returns the
/// per-shard accumulators in shard-index order (the caller merges them
/// in that order so any order-sensitive fold stays deterministic).
///
/// `shards` is clamped to the number of blocks (an idle shard would only
/// return an empty accumulator) and to a minimum of 1; with one shard
/// the blocks run sequentially on the calling thread — same block
/// bookkeeping, no thread machinery.
pub fn run_sharded<A, I, W>(items: u64, block: u64, shards: usize, init: I, work: W) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    W: Fn(&mut A, Range<u64>) + Sync,
{
    let block = block.max(1);
    let blocks = items.div_ceil(block);
    let shards = shards.clamp(1, blocks.max(1).min(usize::MAX as u64) as usize);
    let block_range = |b: u64| {
        let lo = b * block;
        lo..(lo + block).min(items)
    };
    if shards <= 1 {
        let mut acc = init();
        for b in 0..blocks {
            work(&mut acc, block_range(b));
        }
        return vec![acc];
    }
    let cursor = AtomicU64::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..shards)
            .map(|_| {
                let (cursor, init, work) = (&cursor, &init, &work);
                s.spawn(move || {
                    let mut acc = init();
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= blocks {
                            break;
                        }
                        work(&mut acc, block_range(b));
                    }
                    acc
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("fleet shard panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Collects every processed index; merging in shard order must
    /// reconstruct a permutation of the input space with no duplicates.
    fn indices(items: u64, block: u64, shards: usize) -> Vec<Vec<u64>> {
        run_sharded(items, block, shards, Vec::new, |acc: &mut Vec<u64>, r| acc.extend(r))
    }

    fn flatten_sorted(parts: Vec<Vec<u64>>) -> Vec<u64> {
        let mut all: Vec<u64> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn empty_input_yields_one_empty_shard() {
        let parts = indices(0, 64, 8);
        assert_eq!(parts.len(), 1, "no items → no idle shard fan-out");
        assert!(parts[0].is_empty());
    }

    #[test]
    fn fewer_items_than_shards_covers_exactly_once() {
        let parts = indices(3, 1, 8);
        assert_eq!(parts.len(), 3, "shards clamp to block count");
        assert_eq!(flatten_sorted(parts), vec![0, 1, 2]);
    }

    #[test]
    fn one_more_item_than_shards_covers_exactly_once() {
        let parts = indices(5, 1, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(flatten_sorted(parts), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_shard_runs_blocks_in_ascending_order() {
        let parts = indices(10, 3, 1);
        assert_eq!(parts, vec![vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]]);
    }

    #[test]
    fn partial_trailing_block_is_not_overrun() {
        let parts = indices(130, 64, 2);
        assert_eq!(flatten_sorted(parts), (0..130).collect::<Vec<_>>());
    }

    #[test]
    fn shard_indices_are_strictly_increasing_within_a_shard() {
        for shards in [1, 2, 3, 7] {
            for part in indices(200, 8, shards) {
                assert!(part.windows(2).all(|w| w[0] < w[1]), "shard saw {part:?}");
            }
        }
    }

    #[test]
    fn straggler_block_does_not_idle_the_other_shard() {
        // Index 0 sleeps long enough for the other shard to drain every
        // remaining near-instant block off the shared cursor.
        let parts = run_sharded(8, 1, 2, Vec::new, |acc: &mut Vec<u64>, r| {
            for i in r {
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(150));
                }
                acc.push(i);
            }
        });
        assert_eq!(flatten_sorted(parts.clone()), (0..8).collect::<Vec<_>>());
        let straggler =
            parts.iter().find(|p| p.contains(&0)).expect("some shard processed index 0");
        assert_eq!(
            straggler,
            &vec![0],
            "work stealing must let the free shard take the remaining blocks"
        );
    }
}
