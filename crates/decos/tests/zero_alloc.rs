//! Regression: the steady-state slot pipeline performs no heap allocation.
//!
//! This binary installs a counting `#[global_allocator]` and holds exactly
//! one test, so no concurrent harness thread can pollute the counter. A
//! fault-free campaign over the Fig. 10 cluster is warmed up past every
//! lazily-grown structure (scratch buffers, symptom-history horizon,
//! judgement-window maps), then a measured stretch of rounds must leave the
//! allocation counter untouched — the full pipeline (simulation step,
//! integrated diagnostic engine, OBD baseline, metrics recorder) runs on
//! reused buffers alone. The same stretch is then repeated with telemetry
//! enabled: the instrumentation may read the clock but must not allocate
//! either (all counters and histograms are fixed inline arrays).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn fault_free_steady_state_allocates_nothing() {
    use decos::prelude::*;
    use decos_platform::{NullEnvironment, SlotRecord};

    let mut sim = ClusterSim::new(fig10::reference_spec(), 42).unwrap();
    let mut env = NullEnvironment;
    let mut engine = DiagnosticEngine::new(&sim, EngineParams::default());
    let mut obd = ObdDiagnosis::new(&sim, ObdParams::default());
    let mut metrics = SlotMetrics::new();
    let spr = sim.schedule().slots_per_round();
    let mut rec = SlotRecord::empty();
    // Black-box accumulator over schedule queries, so the iterator chains
    // below can't be optimized away.
    let mut query_acc = 0u64;

    let mut run_rounds = |rounds: u64,
                          sim: &mut ClusterSim,
                          engine: &mut DiagnosticEngine,
                          obd: &mut ObdDiagnosis,
                          metrics: &mut SlotMetrics,
                          rec: &mut SlotRecord| {
        for _ in 0..rounds {
            for s in 0..spr {
                sim.step_slot_into(&mut env, rec);
                engine.on_slot(sim, rec);
                obd.on_slot(sim, rec);
                metrics.on_slot(sim, rec);
                // Schedule queries ride along in every measured stretch:
                // the precomputed slot table answers per-node slot lists
                // and the sender set without building intermediate Vecs.
                let sched = sim.schedule();
                query_acc = query_acc.wrapping_add(
                    sched.slots_of(rec.owner).map(|sl| sl.0 as u64).sum::<u64>()
                        + sched.nodes().map(|n| n.0 as u64).sum::<u64>(),
                );
                if s == spr - 1 {
                    engine.on_round_end(sim, rec);
                    obd.on_round_end(sim, rec);
                    metrics.on_round_end(sim, rec);
                }
            }
        }
    };

    // Warm-up: past the 512-round symptom-history horizon (so eviction and
    // buffer recycling are active) and through several 50-round judgement
    // windows (so the α-count maps are fully populated).
    run_rounds(600, &mut sim, &mut engine, &mut obd, &mut metrics, &mut rec);

    let before = ALLOCATIONS.load(Relaxed);
    run_rounds(256, &mut sim, &mut engine, &mut obd, &mut metrics, &mut rec);
    let after = ALLOCATIONS.load(Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state fault-free pipeline must not allocate (got {} allocations over 256 rounds)",
        after - before
    );
    assert_eq!(metrics.rounds, 856);
    assert!(metrics.messages_sent > 0, "the cluster must actually be carrying traffic");

    // Telemetry holds the same invariant when enabled: counters and phase
    // spans live in fixed inline arrays, so instrumentation must add clock
    // reads, never heap traffic.
    sim.enable_telemetry();
    engine.enable_telemetry();
    run_rounds(64, &mut sim, &mut engine, &mut obd, &mut metrics, &mut rec);

    let before = ALLOCATIONS.load(Relaxed);
    run_rounds(256, &mut sim, &mut engine, &mut obd, &mut metrics, &mut rec);
    let after = ALLOCATIONS.load(Relaxed);

    assert_eq!(
        after - before,
        0,
        "telemetry-instrumented steady state must not allocate (got {} allocations)",
        after - before
    );
    let spans = sim.telemetry_spans();
    assert!(
        decos::sim::telemetry::Phase::ALL
            .iter()
            .take(2) // ClusterSim times Kernel and TtNet; the engine owns the rest.
            .all(|p| spans.stat(*p).count > 0),
        "enabled spans must have recorded laps"
    );

    // The flight recorder holds it too: the ring is allocated once at
    // enable time, events are written in place, and a fault-free run emits
    // nothing (symptom/ONA/trust events are edge- or delta-triggered, all
    // zero without injected faults).
    engine.enable_flightrec(decos::sim::flightrec::DEFAULT_CAPACITY);
    run_rounds(64, &mut sim, &mut engine, &mut obd, &mut metrics, &mut rec);

    let before = ALLOCATIONS.load(Relaxed);
    run_rounds(256, &mut sim, &mut engine, &mut obd, &mut metrics, &mut rec);
    let after = ALLOCATIONS.load(Relaxed);

    assert_eq!(
        after - before,
        0,
        "flight-recorder-armed steady state must not allocate (got {} allocations)",
        after - before
    );
    assert!(engine.flightrec().enabled(), "recorder stays armed through the measured stretch");
    assert_eq!(engine.flightrec().recorded(), 0, "a fault-free run writes no trace events");
    assert!(query_acc > 0, "schedule queries must have produced sender/slot sums");
}
