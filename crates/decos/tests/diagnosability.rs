//! Soundness suite for the static diagnosability engine.
//!
//! The analyzer's verdicts are claims about what `ClusterSim` *can*
//! observe; this suite checks them against what paired simulations
//! actually convict. For a pair the analyzer declares **ambiguous**, two
//! campaigns differing only in the injected hypothesis must land on the
//! same conviction outcome (the architecture cannot tell them apart, so
//! confusing them is observable reality, not an analyzer bug). For pairs
//! declared **diagnosable**, the paired runs must land on *different*
//! outcomes — the distinguishing observation the analyzer predicts is
//! really there.
//!
//! Conviction outcome = the sorted set of `(FRU, decided class)` pairs of
//! the final report. Seeds, rates and horizons are pinned; everything
//! here is deterministic.

use decos::analyzer::diagnosability::{pair_verdict, Hypothesis, Verdict};
use decos::analyzer::ExperimentSpec;
use decos::platform::{fig10, NodeId, Position};
use decos::prelude::{run_campaign, Campaign, FaultClass, FaultKind, FaultSpec, FruRef};
use decos::sim::time::SimTime;

const ROUNDS: u64 = 4000;
const ACCEL: f64 = 10.0;

fn hyp(kind: &FaultKind, fru: FruRef) -> Hypothesis {
    Hypothesis { kind: kind.clone(), fru, fault_id: None }
}

/// The analyzer's static verdict for the pair on the fig10 cluster.
fn static_verdict(a: &(FaultKind, FruRef), b: &(FaultKind, FruRef)) -> Verdict {
    let spec = fig10::reference_spec();
    let mut exp = ExperimentSpec::new(&spec);
    exp.rounds = ROUNDS;
    pair_verdict(&exp, &hyp(&a.0, a.1), &hyp(&b.0, b.1), ROUNDS)
}

/// Runs a single-hypothesis campaign and extracts its conviction outcome.
fn convictions(h: &(FaultKind, FruRef), seed: u64) -> Vec<(FruRef, FaultClass)> {
    let fault = FaultSpec { id: 1, kind: h.0.clone(), target: h.1, onset: SimTime::ZERO };
    let c = Campaign::reference(vec![fault], ACCEL, ROUNDS, seed);
    let out = run_campaign(&c).unwrap_or_else(|e| panic!("{}@{} rejected: {e:?}", h.0.name(), h.1));
    let mut decided: Vec<(FruRef, FaultClass)> =
        out.report.verdicts.iter().filter_map(|v| v.class.map(|c| (v.fru, c))).collect();
    decided.sort();
    decided
}

/// Asserts the analyzer calls the pair ambiguous and the paired runs
/// collide on a non-trivial conviction outcome.
fn assert_ambiguity_is_real(a: (FaultKind, FruRef), b: (FaultKind, FruRef), seed: u64) {
    let label = format!("{}@{} ~ {}@{}", a.0.name(), a.1, b.0.name(), b.1);
    match static_verdict(&a, &b) {
        Verdict::Ambiguous { witness } => {
            assert!(!witness.is_empty(), "{label}: ambiguous without a witness")
        }
        other => panic!("{label}: expected Ambiguous, analyzer says {other:?}"),
    }
    let ca = convictions(&a, seed);
    let cb = convictions(&b, seed);
    assert!(!ca.is_empty(), "{label}: first run convicted nothing — the collision is vacuous");
    assert_eq!(ca, cb, "{label}: declared ambiguous, but the paired runs disagree");
}

/// Asserts the analyzer calls the pair diagnosable and the paired runs
/// really land on different conviction outcomes.
fn assert_distinguishable(a: (FaultKind, FruRef), b: (FaultKind, FruRef), seed: u64) {
    let label = format!("{}@{} vs {}@{}", a.0.name(), a.1, b.0.name(), b.1);
    match static_verdict(&a, &b) {
        Verdict::Diagnosable { round } => {
            assert!((1..=ROUNDS).contains(&round), "{label}: round {round} out of horizon")
        }
        other => panic!("{label}: expected Diagnosable, analyzer says {other:?}"),
    }
    let ca = convictions(&a, seed);
    let cb = convictions(&b, seed);
    assert_ne!(
        ca, cb,
        "{label}: declared diagnosable, but the paired runs convict identically ({ca:?})"
    );
}

fn seu(rate: f64) -> FaultKind {
    FaultKind::CosmicRaySeu { rate_per_hour: rate }
}

fn ic_transient(rate: f64) -> FaultKind {
    FaultKind::IcTransient { rate_per_hour: rate, duration_ms: 4.0 }
}

fn emi_at(center: Position) -> FaultKind {
    FaultKind::EmiBurst { rate_per_hour: 20_000.0, duration_ms: 10.0, center, radius_m: 1.5 }
}

fn node_pos(n: u16) -> Position {
    fig10::reference_spec()
        .components
        .iter()
        .find(|c| c.node == NodeId(n))
        .expect("fig10 node")
        .position
}

// ---------------------------------------------------------------------
// Declared-ambiguous pairs: the confusion must be observable in vivo.
// ---------------------------------------------------------------------

/// A cosmic-ray environment and a residual IC defect at the same node
/// both manifest as isolated + recurring transients there; the advisor
/// convicts the same FRU with the same class either way.
#[test]
fn seu_vs_ic_transient_same_node_collide() {
    let n1 = FruRef::Component(NodeId(1));
    assert_ambiguity_is_real((seu(20_000.0), n1), (ic_transient(20_000.0), n1), 23);
}

/// Stress outages and power-supply brownouts are both constant-rate
/// outage processes: identical symptom signatures, identical convictions.
#[test]
fn stress_outage_vs_brownout_same_node_collide() {
    let n2 = FruRef::Component(NodeId(2));
    let stress = FaultKind::StressOutage { rate_per_hour: 20_000.0, outage_ms: 4.0 };
    let brown = FaultKind::PowerSupplyMarginal { rate_per_hour: 20_000.0, outage_ms: 4.0 };
    assert_ambiguity_is_real((stress, n2), (brown, n2), 29);
}

/// EMI centred on N0 and EMI centred on N1 share the proximity zone
/// {N0, N1} (0.54 m apart, 1.5 m radius): the massive-transient pattern
/// attributes both to the same zone, so the source is not localizable.
#[test]
fn emi_zone_sources_collide() {
    let a = (emi_at(node_pos(0)), FruRef::Component(NodeId(0)));
    let b = (emi_at(node_pos(1)), FruRef::Component(NodeId(1)));
    assert_ambiguity_is_real(a, b, 31);
}

// ---------------------------------------------------------------------
// Declared-diagnosable pairs: the predicted distinction must show up.
// ---------------------------------------------------------------------

/// A connector fault at N2 and an IC defect at N1 differ in both pattern
/// and attributed FRU.
#[test]
fn connector_vs_ic_transient_distinguishable() {
    let conn = FaultKind::ConnectorIntermittent { rate_per_hour: 2_000.0, duration_ms: 5.0 };
    let a = (conn, FruRef::Component(NodeId(2)));
    let b = (ic_transient(20_000.0), FruRef::Component(NodeId(1)));
    assert_distinguishable(a, b, 37);
}

/// A stuck transducer and a software design fault on the same job fire
/// different value-domain patterns (transducer-stuck vs software-design).
#[test]
fn sensor_stuck_vs_bohrbug_distinguishable() {
    let a1 = FruRef::Job(fig10::jobs::A1);
    let stuck = FaultKind::SensorStuck { value: 99.0 };
    let bohr = FaultKind::Bohrbug { trigger_band: (-1e9, 1e9), offset: 40.0 };
    assert_distinguishable((stuck, a1), (bohr, a1), 41);
}

/// EMI zones {N0, N1} and {N2, N3} are ~3 m apart: disjoint footprints,
/// disjoint attribution.
#[test]
fn distant_emi_zones_distinguishable() {
    let a = (emi_at(node_pos(0)), FruRef::Component(NodeId(0)));
    let b = (emi_at(node_pos(2)), FruRef::Component(NodeId(2)));
    assert_distinguishable(a, b, 43);
}

/// An oscillator defect and a connector defect at the same node stay
/// distinguishable even on the same FRU: quartz degradation fires the
/// oscillator pattern, the connector fires the omission patterns.
#[test]
fn quartz_vs_connector_same_node_distinguishable() {
    let n2 = FruRef::Component(NodeId(2));
    let quartz = FaultKind::QuartzDegradation { drift_ppm_per_hour: 2_000.0 };
    let conn = FaultKind::ConnectorIntermittent { rate_per_hour: 2_000.0, duration_ms: 5.0 };
    assert_distinguishable((quartz, n2), (conn, n2), 47);
}
