//! Shard-count invariance: the sharded streaming fleet executor must
//! produce bit-identical aggregates — counter fingerprint, every gauge,
//! the f64 mean delivery quality — for *any* shard count, including
//! through a crash-safe store resume (DESIGN.md §16).

use decos::prelude::*;

fn fleet_at(shards: Option<usize>) -> FleetOutcome {
    let cfg = FleetConfig { vehicles: 150, rounds: 200, accel: 10.0, seed: 77 };
    let opts = FleetOptions { telemetry: true, shards, ..FleetOptions::default() };
    run_fleet_configured(&fig10::reference_spec(), cfg, EngineParams::default(), &opts).unwrap()
}

fn fingerprint(out: &FleetOutcome) -> String {
    out.telemetry.as_ref().expect("telemetry on").counter_fingerprint()
}

#[test]
fn aggregates_are_bit_identical_across_shard_counts() {
    let reference = fleet_at(Some(1));
    let ref_fp = fingerprint(&reference);
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    for shards in [2, 3, auto] {
        let out = fleet_at(Some(shards));
        assert_eq!(fingerprint(&out), ref_fp, "counter fingerprint at {shards} shards");
        assert_eq!(
            out.mean_delivery_quality.to_bits(),
            reference.mean_delivery_quality.to_bits(),
            "f64 quality mean must be bit-identical at {shards} shards"
        );
        assert_eq!(out.degraded_vehicles, reference.degraded_vehicles);
        assert_eq!(out.class_counts, reference.class_counts);
        assert_eq!(out.class_correct, reference.class_correct);
        assert_eq!(out.decos, reference.decos);
        assert_eq!(out.obd, reference.obd);
        assert_eq!(out.confusion.render(), reference.confusion.render());
        // Retention is a policy of (total, policy), never of shard count.
        assert_eq!(out.vehicles.len(), reference.vehicles.len());
        assert_eq!(out.vehicles.stride(), reference.vehicles.stride());
        for (a, b) in out.vehicles.samples().iter().zip(reference.vehicles.samples()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.outcome.truth_fru, b.outcome.truth_fru);
        }
    }
}

#[test]
fn auto_shards_match_the_pinned_reference() {
    let pinned = fleet_at(Some(1));
    let auto = fleet_at(None);
    assert_eq!(fingerprint(&auto), fingerprint(&pinned));
    assert_eq!(auto.mean_delivery_quality.to_bits(), pinned.mean_delivery_quality.to_bits());
}

#[test]
fn store_resume_streams_into_the_same_aggregate() {
    use decos::store::FsIo;
    use decos::store_run;

    // A fleet interrupted mid-run and resumed must stream journalled +
    // fresh vehicles through the same accumulator and land on the exact
    // straight-run aggregate, even at a different shard count.
    let dir = std::env::temp_dir().join(format!("decos-shard-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().expect("utf-8 temp dir");
    let spec = fig10::reference_spec();
    let cfg = FleetConfig { vehicles: 40, rounds: 150, accel: 10.0, seed: 9091 };
    let params = EngineParams::default();
    let policy = StorePolicy::default();
    let opts = FleetOptions { telemetry: true, shards: Some(2), ..FleetOptions::default() };
    let straight = run_fleet_configured(&spec, cfg, params, &opts).expect("straight run");

    // First leg: persist only the first 15 vehicles.
    let first = FleetConfig { vehicles: 15, ..cfg };
    let io = FsIo::new(dir_s).expect("store root");
    let mut fs =
        FleetStore::open_or_create(io, &spec, &first, &params, &opts, &policy).expect("created");
    store_run::run_fleet_stored(&spec, first, params, &opts, &policy, &mut fs).expect("first leg");
    drop(fs);

    // Second leg: reopen and extend to the full horizon on one shard.
    let io = FsIo::new(dir_s).expect("store root");
    let resumed_opts = FleetOptions { shards: Some(1), ..opts };
    let mut fs = FleetStore::open_or_create(io, &spec, &cfg, &params, &resumed_opts, &policy)
        .expect("reopened");
    let (resumed, stats) =
        store_run::run_fleet_stored(&spec, cfg, params, &resumed_opts, &policy, &mut fs)
            .expect("resumed leg");
    assert_eq!(stats.verified, 15, "the first leg's vehicles replay from the journal");

    assert_eq!(fingerprint(&resumed), fingerprint(&straight));
    assert_eq!(
        resumed.mean_delivery_quality.to_bits(),
        straight.mean_delivery_quality.to_bits(),
        "resume must be bit-identical to the straight run"
    );
    assert_eq!(resumed.degraded_vehicles, straight.degraded_vehicles);
    assert_eq!(resumed.decos, straight.decos);
    assert_eq!(resumed.vehicles.len(), straight.vehicles.len());
    let _ = std::fs::remove_dir_all(&dir);
}
