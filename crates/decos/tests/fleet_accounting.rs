//! Regression: fleet degraded-vehicle accounting must follow the engine's
//! own `report.degraded` verdict, not a re-derived quality threshold.
//!
//! The historical bug: `run_fleet_with_params` recomputed "degraded" as
//! `delivery_quality < 0.9`, silently dropping the failover and
//! primary-down conditions the engine folds into `report.degraded` — so a
//! vehicle whose diagnostic component crashed and failed over to the cold
//! standby, while keeping high delivery quality the rest of the run, was
//! not counted.

use decos::prelude::*;

/// A fleet where every vehicle additionally suffers rare, short outages of
/// its diagnostic component: failovers happen, but the outages are brief
/// enough that mean delivery quality stays at or above the degradation
/// threshold for at least one vehicle.
fn crashy_fleet() -> FleetOutcome {
    let cfg = FleetConfig { vehicles: 10, rounds: 2000, accel: 10.0, seed: 41 };
    let opts = FleetOptions {
        telemetry: false,
        base_faults: decos::faults::campaign::diag_crash_campaign(NodeId(0), 40.0, 12.0),
        ..FleetOptions::default()
    };
    run_fleet_configured(&fig10::reference_spec(), cfg, EngineParams::default(), &opts).unwrap()
}

#[test]
fn failover_only_vehicles_count_as_degraded() {
    let out = crashy_fleet();
    // The scenario must actually produce the interesting case: at least
    // one vehicle that failed over yet kept quality >= the threshold.
    let failover_high_quality = out
        .vehicles
        .iter()
        .filter(|v| v.failovers > 0 && v.delivery_quality >= DEGRADED_QUALITY_THRESHOLD)
        .count() as u64;
    assert!(
        failover_high_quality > 0,
        "scenario must contain a failover-only vehicle (quality >= {DEGRADED_QUALITY_THRESHOLD})"
    );

    // The aggregate must agree with the engine's per-vehicle verdicts...
    let engine_degraded = out.vehicles.iter().filter(|v| v.degraded).count() as u64;
    assert_eq!(out.degraded_vehicles, engine_degraded);

    // ...and therefore exceed what the buggy quality-only re-derivation
    // would have counted.
    let quality_only =
        out.vehicles.iter().filter(|v| v.delivery_quality < DEGRADED_QUALITY_THRESHOLD).count()
            as u64;
    assert!(
        out.degraded_vehicles >= quality_only + failover_high_quality,
        "failover-only vehicles must be counted: degraded={} quality_only={} failover_high={}",
        out.degraded_vehicles,
        quality_only,
        failover_high_quality
    );

    // Every vehicle that failed over is degraded by definition.
    for v in &out.vehicles {
        if v.failovers > 0 {
            assert!(v.degraded, "failover implies degraded: {v:?}");
        }
    }
}

#[test]
fn base_faults_do_not_perturb_sampled_ground_truth() {
    // The same fleet with and without base faults must sample identical
    // ground-truth faults (base faults ride along, they are not truth).
    let cfg = FleetConfig { vehicles: 6, rounds: 600, accel: 10.0, seed: 9 };
    let plain = run_fleet(&fig10::reference_spec(), cfg).unwrap();
    let opts = FleetOptions {
        telemetry: false,
        base_faults: decos::faults::campaign::diag_crash_campaign(NodeId(0), 40.0, 12.0),
        ..FleetOptions::default()
    };
    let crashy =
        run_fleet_configured(&fig10::reference_spec(), cfg, EngineParams::default(), &opts)
            .unwrap();
    assert_eq!(plain.vehicles.len(), crashy.vehicles.len());
    for (a, b) in plain.vehicles.iter().zip(&crashy.vehicles) {
        assert_eq!(a.truth_fru, b.truth_fru);
        assert_eq!(a.truth_class, b.truth_class);
    }
}
