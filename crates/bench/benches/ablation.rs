//! Ablation benches for DESIGN.md's design choices:
//!
//! * α-count vs. naive consecutive-failure counting (cost per judgement);
//! * guardian on vs. off (cost of temporal isolation);
//! * diagnostic-network budget (symptom flood handling);
//! * fleet parallel scaling (rayon vs. sequential).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decos::diagnosis::{DiagnosticNetwork, Subject, Symptom, SymptomKind};
use decos::prelude::*;
use decos::reliability::{AlphaCount, AlphaParams};
use decos::timebase::LatticePoint;
use decos::ttnet::GuardianMode;

fn bench_alpha(c: &mut Criterion) {
    let mut g = c.benchmark_group("alpha_count");
    g.throughput(Throughput::Elements(1));
    g.bench_function("observe_with_decay", |b| {
        let mut a = AlphaCount::new(AlphaParams { decay: 0.95, threshold: 3.0 });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            a.observe(i % 17 == 0)
        });
    });
    g.bench_function("observe_naive", |b| {
        let mut a = AlphaCount::new(AlphaParams { decay: 0.0, threshold: 3.0 });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            a.observe(i % 17 == 0)
        });
    });
    g.finish();
}

fn bench_guardian_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("guardian_ablation");
    g.sample_size(20);
    const SLOTS: u64 = 2_000;
    g.throughput(Throughput::Elements(SLOTS));
    for (label, mode) in [
        ("enforcing", GuardianMode::Enforcing { window_half_ns: 10_000 }),
        ("none", GuardianMode::None),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let mut spec = fig10::reference_spec();
                spec.channel.guardian = mode;
                let mut sim = ClusterSim::new(spec, 5).unwrap();
                let mut env = decos::platform::NullEnvironment;
                for _ in 0..SLOTS {
                    std::hint::black_box(sim.step_slot(&mut env));
                }
            });
        });
    }
    g.finish();
}

fn bench_dissemination_budget(c: &mut Criterion) {
    let mut g = c.benchmark_group("diag_network_budget");
    let flood: Vec<Symptom> = (0..256)
        .map(|i| Symptom {
            at: SimTime::ZERO,
            point: LatticePoint(0),
            observer: NodeId((i % 4) as u16),
            subject: Subject::Component(NodeId(((i + 1) % 4) as u16)),
            kind: SymptomKind::Omission,
        })
        .collect();
    for &cap in &[16usize, 64, 256] {
        g.throughput(Throughput::Elements(flood.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            let mut net = DiagnosticNetwork::new(cap, cap * 8).expect("valid budget");
            b.iter(|| {
                net.offer(&flood);
                std::hint::black_box(net.deliver_round())
            });
        });
    }
    g.finish();
}

fn bench_fleet_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_scaling");
    g.sample_size(10);
    let spec = fig10::reference_spec();
    for &vehicles in &[4u64, 16] {
        g.throughput(Throughput::Elements(vehicles));
        g.bench_with_input(BenchmarkId::new("rayon", vehicles), &vehicles, |b, &v| {
            b.iter(|| {
                let cfg = FleetConfig { vehicles: v, rounds: 400, accel: 10.0, seed: 7 };
                std::hint::black_box(run_fleet(&spec, cfg))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_alpha,
    bench_guardian_ablation,
    bench_dissemination_budget,
    bench_fleet_scaling
);
criterion_main!(benches);
