//! Throughput of the discrete-event kernel (`decos-sim`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decos::sim::{Context, Engine, Model, SimDuration, SimTime};

struct Ticker {
    remaining: u64,
    period: SimDuration,
}

enum Ev {
    Tick,
}

impl Model for Ticker {
    type Event = Ev;
    fn handle(&mut self, ctx: &mut Context<Ev>, _event: Ev) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(self.period, Ev::Tick);
        }
    }
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel");
    for &events in &[1_000u64, 100_000] {
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(BenchmarkId::new("self_scheduling_chain", events), &events, |b, &n| {
            b.iter(|| {
                let mut eng =
                    Engine::new(Ticker { remaining: n, period: SimDuration::from_micros(10) });
                eng.schedule_at(SimTime::ZERO, Ev::Tick);
                eng.run_until(SimTime::MAX);
                assert_eq!(eng.processed(), n + 1);
            });
        });
    }
    // Wide queue: many concurrent timers (heap pressure).
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("wide_heap_10k", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Ticker { remaining: 0, period: SimDuration::from_micros(1) });
            for i in 0..10_000u64 {
                eng.schedule_at(SimTime::from_nanos(i * 97 % 100_000), Ev::Tick);
            }
            eng.run_until(SimTime::MAX);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
