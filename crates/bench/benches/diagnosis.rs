//! Cost of the diagnostic pipeline stages: distributed-state ingestion,
//! ONA evaluation and trust updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decos::diagnosis::{
    DistributedState, FruAssessor, OnaBank, OnaParams, PatternMatch, Subject, Symptom, SymptomKind,
    TrustParams,
};
use decos::faults::{FaultClass, FruRef};
use decos::prelude::*;
use decos::timebase::LatticePoint;

fn mk_symptoms(n: usize, round: u64) -> Vec<Symptom> {
    (0..n)
        .map(|i| Symptom {
            at: SimTime::from_millis(round * 4),
            point: LatticePoint(round * 4),
            observer: NodeId((i % 4) as u16),
            subject: Subject::Component(NodeId(((i + 1) % 4) as u16)),
            kind: if i % 3 == 0 { SymptomKind::InvalidCrc } else { SymptomKind::Omission },
        })
        .collect()
}

fn bench_state(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_state");
    for &per_round in &[0usize, 4, 32] {
        g.throughput(Throughput::Elements(per_round.max(1) as u64));
        g.bench_with_input(BenchmarkId::new("ingest_round", per_round), &per_round, |b, &n| {
            let mut ds = DistributedState::new(512, SimDuration::from_millis(400));
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                ds.ingest_round(SimTime::from_millis(round * 4), mk_symptoms(n, round));
            });
        });
    }
    g.bench_function("pair_matrix_window3", |b| {
        let mut ds = DistributedState::new(512, SimDuration::from_millis(400));
        for r in 0..512u64 {
            ds.ingest_round(SimTime::from_millis(r * 4), mk_symptoms(8, r));
        }
        b.iter(|| std::hint::black_box(ds.pair_matrix(3)));
    });
    g.finish();
}

fn bench_ona(c: &mut Criterion) {
    let mut g = c.benchmark_group("ona_bank");
    let sim = ClusterSim::new(fig10::reference_spec(), 1).unwrap();
    for &per_round in &[0usize, 8] {
        g.bench_with_input(BenchmarkId::new("evaluate_round", per_round), &per_round, |b, &n| {
            let mut bank = OnaBank::new(&sim, OnaParams::default());
            let mut ds = DistributedState::new(512, SimDuration::from_millis(400));
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                ds.ingest_round(SimTime::from_millis(round * 4), mk_symptoms(n, round));
                std::hint::black_box(bank.evaluate_round(SimTime::from_millis(round * 4), &ds))
            });
        });
    }
    g.finish();
}

fn bench_trust(c: &mut Criterion) {
    c.bench_function("trust_update_round", |b| {
        let mut t = FruAssessor::new(TrustParams::default());
        let matches: Vec<PatternMatch> = (0..8)
            .map(|i| PatternMatch {
                at: SimTime::ZERO,
                fru: FruRef::Component(NodeId(i % 4)),
                class: FaultClass::ComponentInternal,
                pattern: "bench",
                confidence: 0.5,
            })
            .collect();
        b.iter(|| t.update_round(&matches));
    });
}

criterion_group!(benches, bench_state, bench_ona, bench_trust);
criterion_main!(benches);
