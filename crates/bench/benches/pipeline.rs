//! End-to-end simulation throughput: cluster slots per second, with and
//! without faults and with the diagnostic engine attached — the numbers
//! that size the fleet experiments.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use decos::diagnosis::{DiagnosticEngine, EngineParams};
use decos::faults::{campaign, FaultEnvironment};
use decos::platform::NullEnvironment;
use decos::prelude::*;
use decos::sim::SeedSource;

const SLOTS: u64 = 4_000;

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.throughput(Throughput::Elements(SLOTS));

    g.bench_function("fault_free_slots", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(fig10::reference_spec(), 1).unwrap();
            let mut env = NullEnvironment;
            for _ in 0..SLOTS {
                std::hint::black_box(sim.step_slot(&mut env));
            }
        });
    });

    // Scaling: the 8-LRM avionics cluster (2× components, 14 jobs).
    g.bench_function("fault_free_slots_avionics", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(decos::platform::avionics::avionics_spec(), 1).unwrap();
            let mut env = NullEnvironment;
            for _ in 0..SLOTS {
                std::hint::black_box(sim.step_slot(&mut env));
            }
        });
    });

    // Steady-state comparison: the allocating wrapper vs. the
    // buffer-reusing pipeline. Construction happens outside the timed
    // closure so the numbers isolate the per-slot cost.
    g.bench_function("steady_state_step_slot", |b| {
        let mut sim = ClusterSim::new(fig10::reference_spec(), 1).unwrap();
        let mut env = NullEnvironment;
        b.iter(|| {
            for _ in 0..SLOTS {
                std::hint::black_box(sim.step_slot(&mut env));
            }
        });
    });

    g.bench_function("steady_state_step_slot_into", |b| {
        let mut sim = ClusterSim::new(fig10::reference_spec(), 1).unwrap();
        let mut env = NullEnvironment;
        let mut rec = decos::platform::SlotRecord::empty();
        b.iter(|| {
            for _ in 0..SLOTS {
                sim.step_slot_into(&mut env, &mut rec);
                std::hint::black_box(&rec);
            }
        });
    });

    g.bench_function("faulty_slots", |b| {
        b.iter(|| {
            let spec = fig10::reference_spec();
            let mut env = FaultEnvironment::for_cluster(
                campaign::connector_campaign(NodeId(2), 2_000.0),
                &spec,
                10.0,
                SeedSource::new(2),
            );
            let mut sim = ClusterSim::new(spec, 2).unwrap();
            for _ in 0..SLOTS {
                std::hint::black_box(sim.step_slot(&mut env));
            }
        });
    });

    g.bench_function("slots_with_diagnosis", |b| {
        b.iter(|| {
            let spec = fig10::reference_spec();
            let mut env = FaultEnvironment::for_cluster(
                campaign::connector_campaign(NodeId(2), 2_000.0),
                &spec,
                10.0,
                SeedSource::new(3),
            );
            let mut sim = ClusterSim::new(spec, 3).unwrap();
            let mut eng = DiagnosticEngine::new(&sim, EngineParams::default());
            for _ in 0..SLOTS {
                let rec = sim.step_slot(&mut env);
                eng.observe_slot(&sim, &rec);
            }
            std::hint::black_box(eng.report())
        });
    });

    g.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("full_campaign_1000_rounds", |b| {
        b.iter(|| {
            let camp = Campaign::reference(
                campaign::wearout_campaign(NodeId(1), 500.0, 200_000.0),
                1.0,
                1_000,
                4,
            );
            std::hint::black_box(run_campaign(&camp).unwrap())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cluster, bench_campaign);
criterion_main!(benches);
