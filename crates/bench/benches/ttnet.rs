//! Throughput of the time-triggered network primitives (`decos-ttnet`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decos::sim::SeedSource;
use decos::ttnet::crc::crc32;
use decos::ttnet::{
    BroadcastBus, ChannelParams, Frame, MembershipParams, MembershipService, NodeId, RxDisturbance,
    SlotIndex, TxAttempt,
};

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    for &len in &[64usize, 1024] {
        let data = vec![0xA5u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &data, |b, d| {
            b.iter(|| crc32(std::hint::black_box(d)));
        });
    }
    g.finish();
}

fn bench_bus(c: &mut Criterion) {
    let mut g = c.benchmark_group("bus_resolve_slot");
    let mut rng = SeedSource::new(1).stream("bench-bus", 0);
    for &receivers in &[4usize, 16, 63] {
        let frame = Frame::new(NodeId(0), 0, SlotIndex(0), vec![0u8; 256]);
        g.throughput(Throughput::Elements(receivers as u64));
        g.bench_with_input(BenchmarkId::new("nominal", receivers), &receivers, |b, &n| {
            let mut bus = BroadcastBus::new(ChannelParams::default());
            let rx = vec![RxDisturbance::NONE; n];
            b.iter(|| {
                let tx = TxAttempt::nominal(frame.clone());
                bus.resolve_slot(&tx, &rx, &mut rng)
            });
        });
        g.bench_with_input(BenchmarkId::new("disturbed", receivers), &receivers, |b, &n| {
            let mut bus = BroadcastBus::new(ChannelParams::default());
            let rx: Vec<RxDisturbance> = (0..n)
                .map(|i| RxDisturbance { omit: i % 3 == 0, corrupt_bits: (i % 2) as u32 * 3 })
                .collect();
            b.iter(|| {
                let tx = TxAttempt {
                    frame: Some(frame.clone()),
                    offset_ns: 2_000,
                    source_corrupt_bits: 1,
                };
                bus.resolve_slot(&tx, &rx, &mut rng)
            });
        });
    }
    g.finish();
}

fn bench_membership(c: &mut Criterion) {
    c.bench_function("membership_observe_slot", |b| {
        let mut m = MembershipService::new(16, MembershipParams::default());
        let mut i = 0u16;
        b.iter(|| {
            i = (i + 1) % 16;
            m.observe_slot(NodeId(i), i % 7 != 0)
        });
    });
}

criterion_group!(benches, bench_crc, bench_bus, bench_membership);
criterion_main!(benches);
