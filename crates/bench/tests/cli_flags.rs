//! End-to-end regression for the silent flag-parse fallback: `repro`
//! used to swallow numeric parse errors (`--vehicles 24x` ran the
//! 24-vehicle default instead of failing). Malformed numeric flags must
//! now exit 2 with a usage message naming the flag, and `_` digit
//! separators must parse (`--vehicles 1_000_000` is one million).

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro spawns")
}

#[test]
fn malformed_vehicles_flag_is_a_usage_error() {
    let out = repro(&["fleet", "--vehicles", "24x", "--rounds", "10"]);
    assert_eq!(out.status.code(), Some(2), "exit 2, not a silent default run");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--vehicles"), "stderr names the flag: {err}");
    assert!(err.contains("24x"), "stderr echoes the bad value: {err}");
}

#[test]
fn missing_flag_value_is_a_usage_error() {
    let out = repro(&["fleet", "--vehicles"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--vehicles"));
}

#[test]
fn malformed_effort_is_a_usage_error_even_for_experiments() {
    let out = repro(&["e1-architecture", "--effort", "fast"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--effort"));
}

#[test]
fn underscored_digit_separators_parse() {
    // `2_0` vehicles → a real (cheap) 20-vehicle streaming run, proving
    // the separator form reaches the workload, not just the parser.
    let out = repro(&["fleet", "--vehicles", "2_0", "--rounds", "10", "--shards", "2"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("vehicles=20"), "ran exactly 20 vehicles: {stdout}");
    assert!(stdout.contains("fingerprint_hash="), "summary prints the fingerprint: {stdout}");
}

#[test]
fn storeless_campaign_is_still_a_usage_error() {
    let out = repro(&["campaign"]);
    assert_eq!(out.status.code(), Some(2));
}
