//! Flight-recorder JSONL sink (`decos-flightrec/1`), anomaly dump policy,
//! and the human-readable `repro trace-report` renderer.
//!
//! A dump is one JSON object per line, every line self-describing via its
//! `schema` field — the same discipline as the per-round trace
//! (`decos-trace-round/1`), so downstream tooling can sort mixed JSONL
//! streams by schema. [`read_flightrec`] parses a dump back into
//! [`TraceEvent`]s and [`render_trace_report`] replays them through the
//! exact [`FaultLifecycle`] fold the live run used, so the rendered
//! latency table is the one the run measured.

use decos::prelude::*;
use decos::sim::flightrec::{NO_COMPONENT, NO_FAULT};

/// Schema tag of every flight-recorder dump line.
pub const FLIGHTREC_SCHEMA: &str = "decos-flightrec/1";

/// Serializes one event as a `decos-flightrec/1` JSONL line.
/// `component` is `null` for path-level events; `fault_id` 0 means no
/// injected fault explains the event.
pub fn event_line(e: &TraceEvent) -> String {
    let comp =
        if e.component == NO_COMPONENT { "null".to_string() } else { e.component.to_string() };
    format!(
        "{{\"schema\":\"{FLIGHTREC_SCHEMA}\",\"seq\":{},\"round\":{},\"slot\":{},\
         \"component\":{},\"fault_id\":{},\"kind\":\"{}\",\"detail\":{}}}",
        e.seq,
        e.round,
        e.slot,
        comp,
        e.fault_id,
        e.kind.name(),
        e.detail
    )
}

/// Writes a recording as JSONL, one event per line, oldest first —
/// atomically (write-temp-then-rename), so a crash mid-dump never leaves
/// a truncated recording where a complete one is expected. The ring
/// buffer is bounded, so building the body in memory is fine.
pub fn write_flightrec(rec: &FlightRecording, path: &str) -> std::io::Result<()> {
    let mut body = String::new();
    for e in &rec.events {
        body.push_str(&event_line(e));
        body.push('\n');
    }
    decos::store::write_atomic(std::path::Path::new(path), body.as_bytes())
}

/// Parses a `decos-flightrec/1` JSONL body back into events.
pub fn read_flightrec(body: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |e: &dyn std::fmt::Display| format!("line {}: {e}", i + 1);
        let v = serde::value::parse_embedded(line).map_err(|e| fail(&e))?;
        let entries = v.as_map().map_err(|e| fail(&e))?;
        let field = |name: &str| serde::value::field(entries, name).map_err(|e| fail(&e));
        let schema = field("schema")?.as_str().map_err(|e| fail(&e))?;
        if schema != FLIGHTREC_SCHEMA {
            return Err(format!(
                "line {}: schema {schema:?}, expected {FLIGHTREC_SCHEMA:?}",
                i + 1
            ));
        }
        let kind_name = field("kind")?.as_str().map_err(|e| fail(&e))?.to_string();
        let kind = TraceEventKind::from_name(&kind_name)
            .ok_or_else(|| format!("line {}: unknown event kind {kind_name:?}", i + 1))?;
        let component = match field("component")? {
            serde::value::Value::Null => NO_COMPONENT,
            other => other.as_u64().map_err(|e| fail(&e))? as u16,
        };
        events.push(TraceEvent {
            seq: field("seq")?.as_u64().map_err(|e| fail(&e))?,
            round: field("round")?.as_u64().map_err(|e| fail(&e))?,
            slot: field("slot")?.as_u64().map_err(|e| fail(&e))? as u16,
            component,
            fault_id: field("fault_id")?.as_u64().map_err(|e| fail(&e))? as u32,
            kind,
            detail: field("detail")?.as_u64().map_err(|e| fail(&e))? as u32,
        });
    }
    Ok(events)
}

/// Whether an outcome warrants a flight-recorder dump: a failover, a
/// crashed round, a degraded diagnostic path, or a conviction no injected
/// fault explains.
pub fn is_anomalous(out: &CampaignOutcome) -> bool {
    out.report.failovers > 0
        || out.report.crashed_rounds > 0
        || out.report.degraded
        || out.lifecycle.as_ref().is_some_and(|lc| lc.wrong_fru_convictions > 0)
}

/// Dumps the outcome's recording to `path` when
/// [`is_anomalous`] — the flight-recorder policy: keep the tape only when
/// something went wrong. Returns whether a dump was written.
pub fn dump_on_anomaly(out: &CampaignOutcome, path: &str) -> std::io::Result<bool> {
    match (&out.trace, is_anomalous(out)) {
        (Some(trace), true) => {
            write_flightrec(trace, path)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Maximum timeline rows in a trace report; the tail (most recent events)
/// wins, flight-recorder style.
const TIMELINE_CAP: usize = 200;

fn class_name(index: u32) -> String {
    FaultClass::ALL.get(index as usize).map_or_else(|| "?".to_string(), |c| c.to_string())
}

/// Renders the human-readable fault timeline and latency table of a
/// recorded (or parsed-back) event stream.
pub fn render_trace_report(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let lc = FaultLifecycle::from_events(events);

    let _ = writeln!(s, "fault timeline ({} events)", events.len());
    let skipped = events.len().saturating_sub(TIMELINE_CAP);
    if skipped > 0 {
        let _ = writeln!(s, "  ... {skipped} earlier events omitted ...");
    }
    for e in &events[skipped..] {
        let comp = if e.component == NO_COMPONENT {
            "-".to_string()
        } else {
            format!("comp {}", e.component)
        };
        let fault =
            if e.fault_id == NO_FAULT { "-".to_string() } else { format!("fault {}", e.fault_id) };
        let detail = match e.kind {
            TraceEventKind::Conviction => format!("class={}", class_name(e.detail)),
            TraceEventKind::OnaMatch => format!("confidence={:.3}", f64::from(e.detail) / 1000.0),
            _ => format!("detail={}", e.detail),
        };
        let _ = writeln!(
            s,
            "  round {:>6} slot {:>2}  {:<18} {:<10} {:<8} {}",
            e.round,
            e.slot,
            e.kind.name(),
            fault,
            comp,
            detail
        );
    }

    let _ = writeln!(s);
    let _ = writeln!(s, "fault lifecycle (latencies in rounds from onset)");
    let _ = writeln!(
        s,
        "  {:<7} {:<9} {:<10} {:<9} {:<7} {:<5} {:<8} {:<22} outcome",
        "fault", "component", "injected@", "episodes", "detect", "ona", "convict", "class"
    );
    for r in &lc.records {
        let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |x| x.to_string());
        let outcome = if r.convicted() {
            "convicted"
        } else if r.injected_round.is_some() {
            "unconvicted"
        } else {
            "never manifested"
        };
        let _ = writeln!(
            s,
            "  {:<7} {:<9} {:<10} {:<9} {:<7} {:<5} {:<8} {:<22} {}",
            r.fault_id,
            r.component.map_or_else(|| "-".to_string(), |c| c.to_string()),
            opt(r.injected_round),
            r.episodes,
            opt(r.detect_latency()),
            opt(r.ona_latency()),
            opt(r.convict_latency()),
            r.conviction_class.map_or_else(|| "-".to_string(), class_name),
            outcome
        );
    }
    let _ = writeln!(s);
    let count = |k: TraceEventKind| events.iter().filter(|e| e.kind == k).count();
    let _ = writeln!(
        s,
        "faults manifested: {}  detected: {}  convicted: {}  mean detect latency: {:.1}  \
         mean convict latency: {:.1}",
        lc.faults_injected(),
        lc.faults_detected(),
        lc.faults_convicted(),
        lc.mean_detect_latency(),
        lc.mean_convict_latency()
    );
    let _ = writeln!(
        s,
        "anomalies: {} failovers, {} crashed rounds, {} wrong-FRU convictions",
        count(TraceEventKind::Failover),
        count(TraceEventKind::CrashedRound),
        lc.wrong_fru_convictions
    );
    s
}

/// One phase's contribution to pipeline wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShare {
    /// Phase registry name.
    pub name: String,
    /// Estimated wall time spent in the phase: `count × mean_ns`.
    pub total_ns: f64,
    /// Fraction of the summed pipeline wall time, in `[0, 1]`.
    pub share: f64,
}

/// Computes wall-time shares from `(name, count, mean_ns)` triples, as
/// carried by a `BENCH_*.json` `phases` array. Span sampling cancels out:
/// every phase is sampled at the same stride, so `count × mean` keeps the
/// ratios of the true per-phase totals.
pub fn phase_shares(phases: &[(String, u64, f64)]) -> Vec<PhaseShare> {
    let totals: Vec<f64> = phases.iter().map(|(_, count, mean)| *count as f64 * mean).collect();
    let sum: f64 = totals.iter().sum();
    phases
        .iter()
        .zip(&totals)
        .map(|((name, _, _), t)| PhaseShare {
            name: name.clone(),
            total_ns: *t,
            share: if sum > 0.0 { t / sum } else { 0.0 },
        })
        .collect()
}

/// Renders the phase-share table: percent of pipeline wall time per
/// phase, pipeline order, with a proportional bar for reading at a
/// glance.
pub fn render_phase_shares(shares: &[PhaseShare]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "phase share of pipeline wall time");
    for p in shares {
        let pct = p.share * 100.0;
        let bar = "#".repeat((p.share * 40.0).round() as usize);
        let _ = writeln!(s, "  {:<14} {:>6.1}%  {:>12.0} ns  {}", p.name, pct, p.total_ns, bar);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_shares_sum_to_one_and_rank_by_total() {
        let phases = vec![
            ("kernel".to_string(), 1000u64, 500.0),
            ("ttnet".to_string(), 1000, 250.0),
            ("detect".to_string(), 1000, 125.0),
            ("state".to_string(), 250, 0.0),
        ];
        let shares = phase_shares(&phases);
        let sum: f64 = shares.iter().map(|p| p.share).sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares must sum to 1, got {sum}");
        assert_eq!(shares[0].name, "kernel");
        assert!(shares[0].share > shares[1].share && shares[1].share > shares[2].share);
        assert_eq!(shares[3].share, 0.0, "an unexercised phase contributes nothing");
        let table = render_phase_shares(&shares);
        assert!(table.contains("kernel"), "{table}");
        assert!(table.contains('%'), "{table}");
        // Degenerate input: no recorded time at all must not divide by 0.
        let empty = phase_shares(&[("kernel".to_string(), 0, 0.0)]);
        assert_eq!(empty[0].share, 0.0);
    }

    #[test]
    fn event_lines_roundtrip() {
        let events = vec![
            TraceEvent {
                seq: 0,
                round: 3,
                slot: 1,
                component: 2,
                fault_id: 1,
                kind: TraceEventKind::FaultInjected,
                detail: 1,
            },
            TraceEvent {
                seq: 1,
                round: 4,
                slot: 3,
                component: NO_COMPONENT,
                fault_id: NO_FAULT,
                kind: TraceEventKind::CrashedRound,
                detail: 1,
            },
        ];
        let body: String = events.iter().map(|e| event_line(e) + "\n").collect();
        assert_eq!(read_flightrec(&body).unwrap(), events);
    }

    #[test]
    fn read_rejects_foreign_schema_and_unknown_kind() {
        assert!(read_flightrec("{\"schema\":\"something-else/1\"}").is_err());
        let bad_kind = event_line(&TraceEvent {
            seq: 0,
            round: 0,
            slot: 0,
            component: 0,
            fault_id: 0,
            kind: TraceEventKind::OnaMatch,
            detail: 0,
        })
        .replace("ona-match", "no-such-kind");
        assert!(read_flightrec(&bad_kind).is_err());
    }

    #[test]
    fn real_campaign_dump_roundtrips() {
        // Schema test over a real tape: every line of a recorded campaign
        // parses back bit-identically, and the required-field validation
        // in `read_flightrec` holds for machine-produced lines too.
        let c = Campaign::reference(
            decos::faults::campaign::connector_campaign(NodeId(2), 800.0),
            10.0,
            400,
            11,
        );
        let opts = RunOptions { telemetry: true, flightrec: true, ..Default::default() };
        let out = decos::runner::run_campaign_opts(
            &c,
            EngineParams::default(),
            opts,
            &mut [],
            |_, _, _| {},
        )
        .unwrap();
        let trace = out.trace.as_ref().unwrap();
        assert!(!trace.events.is_empty());
        let dir = std::env::temp_dir().join("decos-flightdump-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.jsonl");
        let path = path.to_str().unwrap();
        write_flightrec(trace, path).unwrap();
        let back = read_flightrec(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back, trace.events);
        // A healthy connector campaign is not anomalous, so the on-anomaly
        // policy keeps no tape.
        assert!(!is_anomalous(&out));
        assert!(!dump_on_anomaly(&out, path).unwrap());
    }

    #[test]
    fn report_renders_lifecycle_and_anomalies() {
        let events = vec![
            TraceEvent {
                seq: 0,
                round: 10,
                slot: 0,
                component: 2,
                fault_id: 1,
                kind: TraceEventKind::FaultInjected,
                detail: 1,
            },
            TraceEvent {
                seq: 1,
                round: 12,
                slot: 2,
                component: 2,
                fault_id: 1,
                kind: TraceEventKind::SymptomRaised,
                detail: 1,
            },
            TraceEvent {
                seq: 2,
                round: 40,
                slot: 3,
                component: 2,
                fault_id: 1,
                kind: TraceEventKind::Conviction,
                detail: 1,
            },
        ];
        let report = render_trace_report(&events);
        assert!(report.contains("fault timeline (3 events)"), "{report}");
        assert!(report.contains("conviction"), "{report}");
        assert!(report.contains("convicted"), "{report}");
        assert!(report.contains("0 wrong-FRU convictions"), "{report}");
        // detect latency 2, convict latency 30.
        assert!(report.contains("mean detect latency: 2.0"), "{report}");
        assert!(report.contains("mean convict latency: 30.0"), "{report}");
    }
}
