//! # decos-bench — experiment harness and benchmarks
//!
//! [`experiments`] regenerates every figure of the paper as data (E1–E11,
//! see DESIGN.md §5); the `repro` binary dispatches on experiment id.
//! [`perf`] emits the committed `BENCH_*.json` trajectory, [`compare`]
//! enforces it (`repro bench-compare`), and [`flightdump`] handles
//! flight-recorder JSONL dumps and `repro trace-report`. Criterion
//! benches live under `benches/`.

pub mod compare;
pub mod experiments;
pub mod flightdump;
pub mod perf;

pub use compare::{
    bench_compare, phase_regressed, read_baseline, regressed, GateResult, PhaseGate,
    DEFAULT_TOLERANCE, GATED_PHASES, PHASE_TOLERANCE_FLOOR,
};
pub use experiments::Effort;
pub use flightdump::{
    dump_on_anomaly, is_anomalous, read_flightrec, render_trace_report, write_flightrec,
    FLIGHTREC_SCHEMA,
};
pub use perf::{bench_fleet, bench_slot, traced_campaign, write_report, BenchReport, TraceWriter};
