//! # decos-bench — experiment harness and benchmarks
//!
//! [`experiments`] regenerates every figure of the paper as data (E1–E11,
//! see DESIGN.md §5); the `repro` binary dispatches on experiment id.
//! [`perf`] emits the committed `BENCH_*.json` trajectory, [`compare`]
//! enforces it (`repro bench-compare`), and [`flightdump`] handles
//! flight-recorder JSONL dumps and `repro trace-report`. Criterion
//! benches live under `benches/`.

pub mod cliflags;
pub mod compare;
pub mod experiments;
pub mod flightdump;
pub mod perf;
pub mod storecli;

/// Process exit codes of the `repro` binary, one per failure class, so CI
/// and scripts can dispatch on *why* a run failed without parsing stderr.
/// Documented in README.md §"Exit codes".
pub mod exitcode {
    /// Success.
    pub const OK: i32 = 0;
    /// Unclassified failure (I/O, panic-adjacent).
    pub const FAILURE: i32 = 1;
    /// Bad command line.
    pub const USAGE: i32 = 2;
    /// The analyzer rejected the experiment spec (including the DA090
    /// store/spec mismatch on resume).
    pub const SPEC_REJECTED: i32 = 3;
    /// The campaign store is structurally corrupt or its I/O failed.
    pub const STORE_CORRUPT: i32 = 4;
    /// A determinism contract was violated: same-seed counter snapshots
    /// disagree, or a resume's replay diverged from the journal.
    pub const DETERMINISM: i32 = 5;
    /// The perf trajectory gate tripped (`bench-compare` regression).
    pub const PERF_GATE: i32 = 6;
}

pub use compare::{
    bench_compare, phase_regressed, read_baseline, regressed, GateResult, PhaseGate,
    DEFAULT_TOLERANCE, GATED_PHASES, PHASE_TOLERANCE_FLOOR,
};
pub use experiments::Effort;
pub use flightdump::{
    dump_on_anomaly, is_anomalous, read_flightrec, render_trace_report, write_flightrec,
    FLIGHTREC_SCHEMA,
};
pub use perf::{bench_fleet, bench_slot, traced_campaign, write_report, BenchReport, TraceWriter};
