//! # decos-bench — experiment harness and benchmarks
//!
//! [`experiments`] regenerates every figure of the paper as data (E1–E11,
//! see DESIGN.md §5); the `repro` binary dispatches on experiment id.
//! Criterion benches live under `benches/`.

pub mod experiments;
pub mod perf;

pub use experiments::Effort;
pub use perf::{bench_fleet, bench_slot, traced_campaign, write_report, BenchReport, TraceWriter};
