//! The perf-trajectory gate: `repro bench-compare`.
//!
//! ROADMAP item 2 asks for the committed `BENCH_*.json` trajectory to be
//! an enforced contract, not decoration. This module re-runs both
//! benchmark shapes and compares their `slots_per_sec` — a wall-clock
//! *rate*, so comparable across effort scales — against the committed
//! baselines, failing on a regression beyond the tolerance. Determinism
//! mismatches fail unconditionally: a non-reproducible benchmark is a
//! worse defect than a slow one.

use crate::perf::{bench_fleet, bench_slot, BenchReport};
use crate::Effort;

/// Default regression tolerance: >10% below baseline fails, per ROADMAP
/// item 2. CI passes a larger value to absorb shared-runner noise.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// The committed numbers one gate comparison runs against.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Schema tag of the committed report.
    pub schema: String,
    /// Committed throughput, slots per wall-clock second.
    pub slots_per_sec: f64,
}

/// Parses a committed `BENCH_*.json` into a [`Baseline`]. Tolerant of the
/// `/1` schema generation (pre-lifecycle metrics, `vehicles_per_sec: 0.0`
/// on the slot shape): the gate compares throughput, not schemas.
pub fn read_baseline(path: &str) -> Result<Baseline, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = serde::value::parse_embedded(&body).map_err(|e| format!("{path}: {e}"))?;
    let entries = v.as_map().map_err(|e| format!("{path}: {e}"))?;
    let schema = serde::value::field(entries, "schema")
        .and_then(|s| s.as_str().map(str::to_string))
        .map_err(|e| format!("{path}: {e}"))?;
    if !schema.starts_with("decos-bench-") {
        return Err(format!("{path}: not a bench report (schema {schema:?})"));
    }
    let slots_per_sec = serde::value::field(entries, "slots_per_sec")
        .and_then(|s| s.as_f64())
        .map_err(|e| format!("{path}: {e}"))?;
    Ok(Baseline { schema, slots_per_sec })
}

/// The gate predicate, kept pure so the synthetic-regression test pins
/// the exact boundary: a regression is a current rate strictly below
/// `baseline * (1 - tolerance)`. Improvements never fail.
pub fn regressed(baseline: f64, current: f64, tolerance: f64) -> bool {
    current < baseline * (1.0 - tolerance)
}

/// One shape's gate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateResult {
    /// Shape name (`fleet` / `slot`).
    pub name: &'static str,
    /// Committed baseline, slots/sec.
    pub baseline: f64,
    /// Measured rate, slots/sec.
    pub current: f64,
    /// Whether the measured rate fails the tolerance.
    pub regressed: bool,
    /// Whether the measured run's same-seed fingerprints agreed.
    pub deterministic: bool,
}

impl GateResult {
    /// Whether this shape passes the gate.
    pub fn passed(&self) -> bool {
        !self.regressed && self.deterministic
    }

    fn of(name: &'static str, baseline: &Baseline, report: &BenchReport, tol: f64) -> Self {
        GateResult {
            name,
            baseline: baseline.slots_per_sec,
            current: report.slots_per_sec,
            regressed: regressed(baseline.slots_per_sec, report.slots_per_sec, tol),
            deterministic: report.deterministic,
        }
    }
}

/// Runs both benchmark shapes at `effort` and gates them against the
/// committed baselines. Errors only on unreadable baselines; regressions
/// are reported in the results for the caller to turn into an exit code.
pub fn bench_compare(
    effort: Effort,
    tolerance: f64,
    fleet_baseline: &str,
    slot_baseline: &str,
) -> Result<Vec<GateResult>, String> {
    let fleet_base = read_baseline(fleet_baseline)?;
    let slot_base = read_baseline(slot_baseline)?;
    let fleet = bench_fleet(effort);
    let slot = bench_slot(effort);
    Ok(vec![
        GateResult::of("fleet", &fleet_base, &fleet, tolerance),
        GateResult::of("slot", &slot_base, &slot, tolerance),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_boundary_is_ten_percent_by_default() {
        // Exactly at the boundary passes; strictly below fails.
        assert!(!regressed(1000.0, 900.0, DEFAULT_TOLERANCE));
        assert!(regressed(1000.0, 899.9, DEFAULT_TOLERANCE));
        assert!(!regressed(1000.0, 1500.0, DEFAULT_TOLERANCE), "improvements never fail");
        assert!(!regressed(1000.0, 501.0, 0.5), "wider tolerance widens the gate");
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        // The acceptance criterion: a >10% synthetic regression must
        // demonstrably fail against a committed-style baseline.
        let baseline = Baseline { schema: "decos-bench-slot/2".to_string(), slots_per_sec: 100.0 };
        let current = baseline.slots_per_sec * 0.85; // 15% slower
        assert!(regressed(baseline.slots_per_sec, current, DEFAULT_TOLERANCE));
    }

    #[test]
    fn baselines_parse_old_and_new_schemas() {
        let dir = std::env::temp_dir().join("decos-compare-test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("old.json");
        std::fs::write(
            &old,
            "{\"schema\":\"decos-bench-slot/1\",\"slots_per_sec\":123.5,\"vehicles_per_sec\":0.0}",
        )
        .unwrap();
        let b = read_baseline(old.to_str().unwrap()).unwrap();
        assert_eq!(b.slots_per_sec, 123.5);
        let new = dir.join("new.json");
        std::fs::write(
            &new,
            "{\"schema\":\"decos-bench-slot/2\",\"slots_per_sec\":140,\"vehicles_per_sec\":null}",
        )
        .unwrap();
        let b = read_baseline(new.to_str().unwrap()).unwrap();
        assert_eq!(b.slots_per_sec, 140.0);
        let junk = dir.join("junk.json");
        std::fs::write(&junk, "{\"schema\":\"decos-trace-round/1\"}").unwrap();
        assert!(read_baseline(junk.to_str().unwrap()).is_err());
    }
}
