//! The perf-trajectory gate: `repro bench-compare`.
//!
//! ROADMAP item 2 asks for the committed `BENCH_*.json` trajectory to be
//! an enforced contract, not decoration. This module re-runs both
//! benchmark shapes and compares their `slots_per_sec` — a wall-clock
//! *rate*, so comparable across effort scales — against the committed
//! baselines, failing on a regression beyond the tolerance. Determinism
//! mismatches fail unconditionally: a non-reproducible benchmark is a
//! worse defect than a slow one.

use crate::perf::{bench_fleet, bench_slot, BenchReport};
use crate::Effort;

/// Default regression tolerance: >10% below baseline fails, per ROADMAP
/// item 2. CI passes a larger value to absorb shared-runner noise.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Pipeline phases whose p50 the gate tracks. Kernel and TtNet are the
/// two simulation-side phases of the flattened slot hot path — the ones
/// the slot-table/SoA refactor is accountable for.
pub const GATED_PHASES: [&str; 2] = ["kernel", "ttnet"];

/// Minimum tolerance for the per-phase p50 gate. Phase quantiles come
/// from log₂ histograms (bucket-bound estimates, factor-of-two granular)
/// over sampled spans, so a tighter throughput tolerance must not make
/// the phase gate noisier than its own resolution.
pub const PHASE_TOLERANCE_FLOOR: f64 = 0.25;

/// The committed numbers one gate comparison runs against.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Schema tag of the committed report.
    pub schema: String,
    /// Committed throughput, slots per wall-clock second.
    pub slots_per_sec: f64,
    /// Committed fleet throughput, vehicles per wall-clock second.
    /// `None` for the slot shape (where the field is `null`) and for
    /// baselines predating it.
    pub vehicles_per_sec: Option<f64>,
    /// Committed per-phase p50s, nanoseconds, as `(name, p50_ns)`.
    /// Empty for baselines predating phase quantiles.
    pub phase_p50: Vec<(String, u64)>,
}

/// Parses a committed `BENCH_*.json` into a [`Baseline`]. Tolerant of the
/// `/1` schema generation (pre-lifecycle metrics, `vehicles_per_sec: 0.0`
/// on the slot shape, no `phases` array): the gate compares throughput,
/// not schemas.
pub fn read_baseline(path: &str) -> Result<Baseline, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = serde::value::parse_embedded(&body).map_err(|e| format!("{path}: {e}"))?;
    let entries = v.as_map().map_err(|e| format!("{path}: {e}"))?;
    let schema = serde::value::field(entries, "schema")
        .and_then(|s| s.as_str().map(str::to_string))
        .map_err(|e| format!("{path}: {e}"))?;
    if !schema.starts_with("decos-bench-") {
        return Err(format!("{path}: not a bench report (schema {schema:?})"));
    }
    let slots_per_sec = serde::value::field(entries, "slots_per_sec")
        .and_then(|s| s.as_f64())
        .map_err(|e| format!("{path}: {e}"))?;
    // Absent (old slot schema) and `null` (new slot schema) both mean
    // "this shape has no fleet rate" — neither is an error.
    let vehicles_per_sec =
        serde::value::field(entries, "vehicles_per_sec").ok().and_then(|s| s.as_f64().ok());
    let mut phase_p50 = Vec::new();
    if let Ok(phases) = serde::value::field(entries, "phases").and_then(|p| p.as_seq()) {
        for p in phases {
            let pm = p.as_map().map_err(|e| format!("{path}: phases: {e}"))?;
            let name = serde::value::field(pm, "name")
                .and_then(|s| s.as_str().map(str::to_string))
                .map_err(|e| format!("{path}: phases: {e}"))?;
            let p50 = serde::value::field(pm, "p50_ns")
                .and_then(|s| s.as_u64())
                .map_err(|e| format!("{path}: phases: {e}"))?;
            phase_p50.push((name, p50));
        }
    }
    Ok(Baseline { schema, slots_per_sec, vehicles_per_sec, phase_p50 })
}

/// The gate predicate, kept pure so the synthetic-regression test pins
/// the exact boundary: a regression is a current rate strictly below
/// `baseline * (1 - tolerance)`. Improvements never fail.
pub fn regressed(baseline: f64, current: f64, tolerance: f64) -> bool {
    current < baseline * (1.0 - tolerance)
}

/// The per-phase latency gate predicate: a phase regresses when its
/// current p50 exceeds the committed p50 by more than one log₂ bucket
/// (×2) times `1 + tolerance.max(PHASE_TOLERANCE_FLOOR)`. The bucket of
/// headroom is not generosity — p50s *are* bucket upper bounds, so the
/// minimum possible movement is a full bucket (+100%), and the median
/// crossing one boundary under load noise must not fail the gate. Two
/// buckets (≥4×) is a real regression. A zero baseline (phase never
/// sampled in the committed run) gates nothing, and faster phases never
/// fail.
pub fn phase_regressed(baseline_ns: u64, current_ns: u64, tolerance: f64) -> bool {
    baseline_ns > 0
        && current_ns as f64
            > baseline_ns as f64 * 2.0 * (1.0 + tolerance.max(PHASE_TOLERANCE_FLOOR))
}

/// One gated phase's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseGate {
    /// Phase registry name.
    pub name: String,
    /// Committed p50, nanoseconds.
    pub baseline_p50_ns: u64,
    /// Measured p50, nanoseconds.
    pub current_p50_ns: u64,
    /// Whether the measured p50 fails the phase tolerance.
    pub regressed: bool,
}

/// The fleet-rate leg of a shape's verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehiclesGate {
    /// Committed baseline, vehicles/sec.
    pub baseline: f64,
    /// Measured rate, vehicles/sec.
    pub current: f64,
    /// Whether the measured rate fails the tolerance.
    pub regressed: bool,
}

/// One shape's gate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateResult {
    /// Shape name (`fleet` / `slot`).
    pub name: &'static str,
    /// Committed baseline, slots/sec.
    pub baseline: f64,
    /// Measured rate, slots/sec.
    pub current: f64,
    /// Whether the measured rate fails the tolerance.
    pub regressed: bool,
    /// Whether the measured run's same-seed fingerprints agreed.
    pub deterministic: bool,
    /// Fleet throughput verdict — `None` when either side has no
    /// vehicles/sec (the slot shape, or a pre-fleet-rate baseline).
    pub vehicles: Option<VehiclesGate>,
    /// Per-phase p50 verdicts over [`GATED_PHASES`] (empty when the
    /// committed baseline predates phase quantiles).
    pub phases: Vec<PhaseGate>,
}

impl GateResult {
    /// Whether this shape passes the gate.
    pub fn passed(&self) -> bool {
        !self.regressed
            && self.deterministic
            && self.vehicles.is_none_or(|v| !v.regressed)
            && self.phases.iter().all(|p| !p.regressed)
    }

    fn of(name: &'static str, baseline: &Baseline, report: &BenchReport, tol: f64) -> Self {
        let phases = GATED_PHASES
            .iter()
            .filter_map(|gp| {
                let base = baseline.phase_p50.iter().find(|(n, _)| n == gp)?.1;
                let cur = report.phases.iter().find(|p| p.name == *gp)?.p50_ns;
                Some(PhaseGate {
                    name: gp.to_string(),
                    baseline_p50_ns: base,
                    current_p50_ns: cur,
                    regressed: phase_regressed(base, cur, tol),
                })
            })
            .collect();
        let vehicles = match (baseline.vehicles_per_sec, report.vehicles_per_sec) {
            (Some(base), Some(cur)) if base > 0.0 => Some(VehiclesGate {
                baseline: base,
                current: cur,
                regressed: regressed(base, cur, tol),
            }),
            _ => None,
        };
        GateResult {
            name,
            baseline: baseline.slots_per_sec,
            current: report.slots_per_sec,
            regressed: regressed(baseline.slots_per_sec, report.slots_per_sec, tol),
            deterministic: report.deterministic,
            vehicles,
            phases,
        }
    }
}

/// Runs both benchmark shapes at `effort` and gates them against the
/// committed baselines. Errors only on unreadable baselines; regressions
/// are reported in the results for the caller to turn into an exit code.
pub fn bench_compare(
    effort: Effort,
    tolerance: f64,
    fleet_baseline: &str,
    slot_baseline: &str,
) -> Result<Vec<GateResult>, String> {
    let fleet_base = read_baseline(fleet_baseline)?;
    let slot_base = read_baseline(slot_baseline)?;
    let fleet = bench_fleet(effort);
    let slot = bench_slot(effort);
    Ok(vec![
        GateResult::of("fleet", &fleet_base, &fleet, tolerance),
        GateResult::of("slot", &slot_base, &slot, tolerance),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_boundary_is_ten_percent_by_default() {
        // Exactly at the boundary passes; strictly below fails.
        assert!(!regressed(1000.0, 900.0, DEFAULT_TOLERANCE));
        assert!(regressed(1000.0, 899.9, DEFAULT_TOLERANCE));
        assert!(!regressed(1000.0, 1500.0, DEFAULT_TOLERANCE), "improvements never fail");
        assert!(!regressed(1000.0, 501.0, 0.5), "wider tolerance widens the gate");
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        // The acceptance criterion: a >10% synthetic regression must
        // demonstrably fail against a committed-style baseline.
        let baseline = Baseline {
            schema: "decos-bench-slot/2".to_string(),
            slots_per_sec: 100.0,
            vehicles_per_sec: None,
            phase_p50: vec![("kernel".to_string(), 1000)],
        };
        let current = baseline.slots_per_sec * 0.85; // 15% slower
        assert!(regressed(baseline.slots_per_sec, current, DEFAULT_TOLERANCE));
    }

    #[test]
    fn phase_gate_allows_one_bucket_plus_the_floor() {
        // One log₂ bucket (×2) plus the 25% floor: ≤2.5× passes, above
        // fails, even with a tighter throughput tolerance.
        assert!(!phase_regressed(1000, 2500, DEFAULT_TOLERANCE));
        assert!(phase_regressed(1000, 2501, DEFAULT_TOLERANCE));
        // A single bucket step (p50 bound 511 → 1023) is measurement
        // noise by construction and must pass.
        assert!(!phase_regressed(511, 1023, DEFAULT_TOLERANCE));
        // Two buckets up is a real regression.
        assert!(phase_regressed(511, 2047, DEFAULT_TOLERANCE));
        // A looser CI tolerance widens the phase gate with it.
        assert!(!phase_regressed(1000, 3000, 0.5));
        assert!(phase_regressed(1000, 3001, 0.5));
        // Faster phases and unsampled baselines never fail.
        assert!(!phase_regressed(1000, 100, DEFAULT_TOLERANCE));
        assert!(!phase_regressed(0, 10_000, DEFAULT_TOLERANCE));
    }

    #[test]
    fn phase_verdicts_feed_the_shape_verdict() {
        let r = GateResult {
            name: "slot",
            baseline: 100.0,
            current: 120.0,
            regressed: false,
            deterministic: true,
            vehicles: None,
            phases: vec![PhaseGate {
                name: "kernel".to_string(),
                baseline_p50_ns: 511,
                current_p50_ns: 2047,
                regressed: true,
            }],
        };
        assert!(!r.passed(), "a phase p50 regression must fail the shape");
    }

    #[test]
    fn vehicles_rate_feeds_the_shape_verdict() {
        let mut r = GateResult {
            name: "fleet",
            baseline: 100.0,
            current: 120.0,
            regressed: false,
            deterministic: true,
            vehicles: Some(VehiclesGate { baseline: 1000.0, current: 500.0, regressed: true }),
            phases: Vec::new(),
        };
        assert!(!r.passed(), "a vehicles/sec regression must fail the fleet shape");
        r.vehicles = Some(VehiclesGate { baseline: 1000.0, current: 980.0, regressed: false });
        assert!(r.passed());
        r.vehicles = None;
        assert!(r.passed(), "shapes without a fleet rate gate only slots/sec");
    }

    #[test]
    fn baselines_parse_old_and_new_schemas() {
        let dir = std::env::temp_dir().join("decos-compare-test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("old.json");
        std::fs::write(
            &old,
            "{\"schema\":\"decos-bench-slot/1\",\"slots_per_sec\":123.5,\"vehicles_per_sec\":0.0}",
        )
        .unwrap();
        let b = read_baseline(old.to_str().unwrap()).unwrap();
        assert_eq!(b.slots_per_sec, 123.5);
        assert!(b.phase_p50.is_empty(), "old schema carries no phase quantiles");
        let new = dir.join("new.json");
        std::fs::write(
            &new,
            "{\"schema\":\"decos-bench-slot/2\",\"slots_per_sec\":140,\"vehicles_per_sec\":null}",
        )
        .unwrap();
        let b = read_baseline(new.to_str().unwrap()).unwrap();
        assert_eq!(b.slots_per_sec, 140.0);
        let phased = dir.join("phased.json");
        std::fs::write(
            &phased,
            "{\"schema\":\"decos-bench-slot/2\",\"slots_per_sec\":140,\"vehicles_per_sec\":null,\
             \"phases\":[{\"name\":\"kernel\",\"p50_ns\":511},{\"name\":\"ttnet\",\"p50_ns\":255}]}",
        )
        .unwrap();
        let b = read_baseline(phased.to_str().unwrap()).unwrap();
        assert_eq!(b.phase_p50, vec![("kernel".to_string(), 511), ("ttnet".to_string(), 255)]);
        let junk = dir.join("junk.json");
        std::fs::write(&junk, "{\"schema\":\"decos-trace-round/1\"}").unwrap();
        assert!(read_baseline(junk.to_str().unwrap()).is_err());
    }
}
