//! `repro` subcommands for the crash-safe campaign store: `campaign
//! --store`, `fleet --store`, `resume`, and `store-stat`.
//!
//! The CLI journals the repo's canonical workloads — the reference
//! connector campaign (the `--trace`/`--flightrec` campaign) and the
//! fig10 fleet — so a `resume` can reconstruct the experiment from the
//! manifest alone and let the spec-hash check (DA090) prove it is the
//! same one. Arbitrary specs go through the library API
//! (`decos::store_run`), not this front end.

use decos::prelude::*;
use decos::store::{FsIo, Store, JOURNAL_FILE};
use decos::store_run::{
    self, CampaignStore, FleetStore, StorePolicy, StoreRunError, StoreRunStats,
};

use crate::exitcode;

/// Knobs shared by the store subcommands; `None` means "use the
/// subcommand default, or on `resume` the manifest value".
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreCliOpts {
    /// Campaign rounds / fleet rounds-per-vehicle.
    pub rounds: Option<u64>,
    /// Fleet vehicles.
    pub vehicles: Option<u64>,
    /// Master seed.
    pub seed: Option<u64>,
    /// Rate acceleration factor.
    pub accel: Option<f64>,
    /// Snapshot cadence ([`StorePolicy::snapshot_every`]).
    pub snapshot_every: Option<u64>,
    /// Fsync cadence ([`StorePolicy::sync_every`]).
    pub sync_every: Option<u64>,
    /// Fleet batch size ([`StorePolicy::chunk`]).
    pub chunk: Option<usize>,
}

impl StoreCliOpts {
    fn policy(&self) -> StorePolicy {
        let d = StorePolicy::default();
        StorePolicy {
            snapshot_every: self.snapshot_every.unwrap_or(d.snapshot_every),
            sync_every: self.sync_every.unwrap_or(d.sync_every),
            chunk: self.chunk.unwrap_or(d.chunk),
        }
    }
}

/// The canonical stored-campaign workload: the reference connector
/// campaign, same shape as `--trace`/`--flightrec`.
fn reference_campaign(rounds: u64, accel: f64, seed: u64) -> Campaign {
    Campaign::reference(
        decos::faults::campaign::connector_campaign(NodeId(2), 800.0),
        accel,
        rounds,
        seed,
    )
}

fn fleet_options() -> decos::fleet::FleetOptions {
    decos::fleet::FleetOptions { telemetry: true, ..Default::default() }
}

fn exit_for(e: &StoreRunError) -> i32 {
    match e {
        StoreRunError::Campaign(_) => exitcode::SPEC_REJECTED,
        StoreRunError::Store(_) => exitcode::STORE_CORRUPT,
        StoreRunError::Determinism { .. } => exitcode::DETERMINISM,
    }
}

fn open_fs(dir: &str) -> Result<FsIo, i32> {
    FsIo::new(dir).map_err(|e| {
        eprintln!("cannot open store root {dir}: {e}");
        exitcode::STORE_CORRUPT
    })
}

fn report_stats(what: &str, stats: &StoreRunStats) {
    println!(
        "{what}: committed_before={} verified={} appended={} \
         journal_records={} journal_bytes={} fsyncs={} snapshots={} quarantined_bytes={}",
        stats.committed_before,
        stats.verified,
        stats.appended,
        stats.journal_records,
        stats.journal_bytes,
        stats.fsyncs,
        stats.snapshots_written,
        stats.quarantined_bytes,
    );
}

/// Runs (or extends) the stored reference campaign under `dir`.
pub fn cmd_campaign(dir: &str, o: &StoreCliOpts) -> i32 {
    let rounds = o.rounds.unwrap_or(2_000);
    let accel = o.accel.unwrap_or(10.0);
    let seed = o.seed.unwrap_or(2026);
    run_stored_campaign(dir, rounds, accel, seed, o)
}

fn run_stored_campaign(dir: &str, rounds: u64, accel: f64, seed: u64, o: &StoreCliOpts) -> i32 {
    let io = match open_fs(dir) {
        Ok(io) => io,
        Err(code) => return code,
    };
    let c = reference_campaign(rounds, accel, seed);
    let params = EngineParams::default();
    let policy = o.policy();
    let mut cs = match CampaignStore::open_or_create(io, &c, &params, &policy) {
        Ok(cs) => cs,
        Err(e) => {
            eprintln!("{e}");
            return exit_for(&e);
        }
    };
    let opts = RunOptions { telemetry: true, ..Default::default() };
    match store_run::run_campaign_stored(&c, params, opts, &policy, &mut cs) {
        Ok((out, stats)) => {
            let snap = out.telemetry.expect("telemetry on");
            println!(
                "{dir}: campaign rounds={rounds} seed={seed} accel={accel} \
                 fingerprint_hash={:016x}",
                decos::store::fnv1a(snap.counter_fingerprint().as_bytes())
            );
            report_stats("store", &stats);
            exitcode::OK
        }
        Err(e) => {
            eprintln!("{e}");
            exit_for(&e)
        }
    }
}

/// Runs (or extends) the stored fig10 fleet under `dir`.
pub fn cmd_fleet(dir: &str, o: &StoreCliOpts) -> i32 {
    let cfg = FleetConfig {
        vehicles: o.vehicles.unwrap_or(24),
        rounds: o.rounds.unwrap_or(1_500),
        accel: o.accel.unwrap_or(10.0),
        seed: o.seed.unwrap_or(2026),
    };
    run_stored_fleet(dir, cfg, o)
}

fn run_stored_fleet(dir: &str, cfg: FleetConfig, o: &StoreCliOpts) -> i32 {
    let io = match open_fs(dir) {
        Ok(io) => io,
        Err(code) => return code,
    };
    let spec = fig10::reference_spec();
    let params = EngineParams::default();
    let opts = fleet_options();
    let policy = o.policy();
    let mut fs = match FleetStore::open_or_create(io, &spec, &cfg, &params, &opts, &policy) {
        Ok(fs) => fs,
        Err(e) => {
            eprintln!("{e}");
            return exit_for(&e);
        }
    };
    match store_run::run_fleet_stored(&spec, cfg, params, &opts, &policy, &mut fs) {
        Ok((out, stats)) => {
            let snap = out.telemetry.as_ref().expect("telemetry on");
            println!(
                "{dir}: fleet vehicles={} rounds={} seed={} nff={:.3} degraded={} \
                 fingerprint_hash={:016x}",
                cfg.vehicles,
                cfg.rounds,
                cfg.seed,
                out.decos.nff_ratio(),
                out.degraded_vehicles,
                decos::store::fnv1a(snap.counter_fingerprint().as_bytes())
            );
            report_stats("store", &stats);
            exitcode::OK
        }
        Err(e) => {
            eprintln!("{e}");
            exit_for(&e)
        }
    }
}

/// Resumes whatever experiment the store under `dir` belongs to,
/// optionally extending the horizon (`--rounds` for campaigns,
/// `--vehicles` for fleets). Everything else comes from the manifest; the
/// spec-hash check rejects a drifted reconstruction with DA090.
pub fn cmd_resume(dir: &str, o: &StoreCliOpts) -> i32 {
    let io = match open_fs(dir) {
        Ok(io) => io,
        Err(code) => return code,
    };
    let (manifest, _, _) = match Store::inspect(io) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return exitcode::STORE_CORRUPT;
        }
    };
    match manifest.kind.as_str() {
        store_run::CAMPAIGN_KIND => {
            let rounds = o.rounds.unwrap_or(manifest.rounds);
            run_stored_campaign(dir, rounds, manifest.accel, manifest.seed, o)
        }
        store_run::FLEET_KIND => {
            let cfg = FleetConfig {
                vehicles: o.vehicles.unwrap_or(manifest.vehicles),
                rounds: manifest.rounds,
                accel: manifest.accel,
                seed: manifest.seed,
            };
            run_stored_fleet(dir, cfg, o)
        }
        other => {
            eprintln!("store kind {other:?} is not resumable by this binary");
            exitcode::STORE_CORRUPT
        }
    }
}

/// Read-only store inspection: manifest, scan verdict, snapshots,
/// quarantine. Never mutates the store (a torn tail is reported, not
/// quarantined — the next open does that).
pub fn cmd_store_stat(dir: &str) -> i32 {
    let io = match open_fs(dir) {
        Ok(io) => io,
        Err(code) => return code,
    };
    let (manifest, scan, total) = match Store::inspect(io) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return exitcode::STORE_CORRUPT;
        }
    };
    println!("store:          {dir}");
    println!("schema:         {}", manifest.schema);
    println!("kind:           {}", manifest.kind);
    println!("workload:       {}", manifest.workload);
    println!("spec_hash:      {:016x}", manifest.spec_hash);
    println!("seed:           {}", manifest.seed);
    println!("accel:          {}", manifest.accel);
    println!("rounds:         {}", manifest.rounds);
    println!("vehicles:       {}", manifest.vehicles);
    println!("snapshot_every: {}", manifest.snapshot_every);
    println!(
        "journal:        {} committed records, {} committed bytes ({total} on disk)",
        scan.records.len(),
        scan.valid_len
    );
    match &scan.torn {
        Some(reason) => println!(
            "tail:           TORN at byte {} ({reason}); {} bytes pending quarantine",
            scan.valid_len,
            total - scan.valid_len
        ),
        None => println!("tail:           clean"),
    }
    // Fresh handles for the directory listings (inspect consumed the
    // first), plus direct journal presence for sanity.
    if let Ok(mut io) = FsIo::new(dir) {
        use decos::store::StoreIo as _;
        if let Ok(snaps) = io.list(decos::store::SNAP_DIR) {
            println!("snapshots:      {}", render_names(&snaps));
        }
        if let Ok(q) = io.list(decos::store::QUARANTINE_DIR) {
            println!("quarantine:     {}", render_names(&q));
        }
        if !io.exists(JOURNAL_FILE) && scan.records.is_empty() {
            println!("note:           journal not yet created (no rounds committed)");
        }
    }
    exitcode::OK
}

fn render_names(names: &[String]) -> String {
    if names.is_empty() {
        "(none)".to_string()
    } else {
        names.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("decos-storecli-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn campaign_then_resume_then_stat_round_trips_on_the_real_fs() {
        let dir = tmpdir("campaign");
        let o = StoreCliOpts {
            rounds: Some(120),
            seed: Some(11),
            snapshot_every: Some(64),
            sync_every: Some(8),
            ..Default::default()
        };
        assert_eq!(cmd_campaign(&dir, &o), exitcode::OK);
        // Resume with a longer horizon: replays 120, appends 80 more.
        let extend = StoreCliOpts { rounds: Some(200), ..o };
        assert_eq!(cmd_resume(&dir, &extend), exitcode::OK);
        assert_eq!(cmd_store_stat(&dir), exitcode::OK);
        // A different seed is a different experiment: DA090 → spec-rejected.
        let drifted = StoreCliOpts { seed: Some(12), ..o };
        assert_eq!(cmd_campaign(&dir, &drifted), exitcode::SPEC_REJECTED);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_store_resume_skips_committed_vehicles() {
        let dir = tmpdir("fleet");
        let o = StoreCliOpts {
            vehicles: Some(4),
            rounds: Some(400),
            seed: Some(3),
            chunk: Some(2),
            ..Default::default()
        };
        assert_eq!(cmd_fleet(&dir, &o), exitcode::OK);
        // Growing the fleet reuses the four committed vehicles.
        let grown = StoreCliOpts { vehicles: Some(6), ..o };
        assert_eq!(cmd_resume(&dir, &grown), exitcode::OK);
        assert_eq!(cmd_store_stat(&dir), exitcode::OK);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_stat_on_a_non_store_is_store_corrupt() {
        let dir = tmpdir("nonstore");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(cmd_store_stat(&dir), exitcode::STORE_CORRUPT);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
