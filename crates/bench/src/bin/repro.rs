//! Regenerates the paper's figures as data: one subcommand per experiment.
//!
//! ```sh
//! cargo run --release -p decos-bench --bin repro -- all
//! cargo run --release -p decos-bench --bin repro -- e5-bathtub --json
//! cargo run --release -p decos-bench --bin repro -- e9-actions --effort 0.2
//! ```

use decos_bench::experiments as exp;
use decos_bench::Effort;

const IDS: &[&str] = &[
    "e1-architecture",
    "e2-taxonomy",
    "e3-component",
    "e4-job",
    "e5-bathtub",
    "e6-patterns",
    "e7-trust",
    "e8-judgment",
    "e9-actions",
    "e10-assumptions",
    "e11-alpha",
    "e12-ablation",
    "e13-service-loop",
    "e14-diag-degradation",
];

fn run_one(id: &str, effort: Effort, json: bool) {
    macro_rules! emit {
        ($result:expr) => {{
            let r = $result;
            if json {
                println!("{}", serde_json::to_string_pretty(&r).expect("serializable"));
            } else {
                println!("{}", r.render());
            }
        }};
    }
    match id {
        "e1-architecture" => emit!(exp::e1_architecture()),
        "e2-taxonomy" => emit!(exp::e2_taxonomy(effort)),
        "e3-component" => emit!(exp::e3_component(effort)),
        "e4-job" => emit!(exp::e4_job(effort)),
        "e5-bathtub" => emit!(exp::e5_bathtub(effort)),
        "e6-patterns" => emit!(exp::e6_patterns(effort)),
        "e7-trust" => emit!(exp::e7_trust(effort)),
        "e8-judgment" => emit!(exp::e8_judgment(effort)),
        "e9-actions" => emit!(exp::e9_actions(effort)),
        "e10-assumptions" => emit!(exp::e10_assumptions(effort)),
        "e11-alpha" => emit!(exp::e11_alpha(effort)),
        "e12-ablation" => emit!(exp::e12_ablation(effort)),
        "e13-service-loop" => emit!(exp::e13_service_loop(effort)),
        "e14-diag-degradation" => emit!(exp::e14_diag_degradation(effort)),
        other => {
            eprintln!("unknown experiment '{other}'; available: {IDS:?} or 'all'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let effort = args
        .iter()
        .position(|a| a == "--effort")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .map(Effort)
        .unwrap_or(Effort(1.0));
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<f64>().is_err())
        .map(|s| s.as_str())
        .collect();
    if ids.is_empty() {
        eprintln!("usage: repro <experiment|all> [--json] [--effort <f>]");
        eprintln!("experiments: {IDS:?}");
        std::process::exit(2);
    }
    for id in ids {
        if id == "all" {
            for e in IDS {
                println!("================================================================");
                run_one(e, effort, json);
            }
        } else {
            run_one(id, effort, json);
        }
    }
}
