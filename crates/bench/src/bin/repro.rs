//! Regenerates the paper's figures as data: one subcommand per experiment.
//!
//! ```sh
//! cargo run --release -p decos-bench --bin repro -- all
//! cargo run --release -p decos-bench --bin repro -- e5-bathtub --json
//! cargo run --release -p decos-bench --bin repro -- e9-actions --effort 0.2
//! ```
//!
//! Telemetry sinks (DESIGN.md §11):
//!
//! ```sh
//! # Emit BENCH_fleet.json + BENCH_slot.json (exits 5 if same-seed
//! # counter snapshots disagree — the CI determinism gate).
//! cargo run --release -p decos-bench --bin repro -- --telemetry
//! # Stream a per-round JSONL trace of a reference campaign.
//! cargo run --release -p decos-bench --bin repro -- --trace trace.jsonl
//! # Record a fault-lifecycle flight-recorder dump of the same campaign.
//! cargo run --release -p decos-bench --bin repro -- --flightrec flightrec.jsonl
//! # Render a dump as a fault timeline + latency table.
//! cargo run --release -p decos-bench --bin repro -- trace-report flightrec.jsonl
//! # Enforce the perf trajectory against the committed BENCH files
//! # (exit 6 on a >10% slots/sec regression, 5 on a determinism mismatch).
//! cargo run --release -p decos-bench --bin repro -- bench-compare --tolerance 0.10
//! ```
//!
//! Fleet scale (DESIGN.md §16):
//!
//! ```sh
//! # Stream the million-vehicle fleet through the sharded executor.
//! cargo run --release -p decos-bench --bin repro -- fleet --vehicles 1_000_000
//! # Pin the shard count (default: available parallelism).
//! cargo run --release -p decos-bench --bin repro -- fleet --vehicles 50_000 --shards 2
//! # Regenerate BENCH_fleet.json from an explicit workload.
//! cargo run --release -p decos-bench --bin repro -- fleet --vehicles 1_000_000 --telemetry
//! ```
//!
//! Numeric flags parse strictly: `--vehicles 24x` is a usage error
//! (exit 2), never a silent fallback to the default workload, and `_`
//! digit separators are accepted (`1_000_000`).
//!
//! Crash-safe persistence (DESIGN.md §15):
//!
//! ```sh
//! # Journal the reference campaign / the fig10 fleet as it runs.
//! cargo run --release -p decos-bench --bin repro -- campaign --store /tmp/c1
//! cargo run --release -p decos-bench --bin repro -- fleet --store /tmp/f1 --vehicles 24
//! # Continue after a crash (or extend the horizon) — bit-identical resume.
//! cargo run --release -p decos-bench --bin repro -- resume /tmp/c1 --rounds 4000
//! # Inspect a store without mutating it.
//! cargo run --release -p decos-bench --bin repro -- store-stat /tmp/c1
//! ```
//!
//! Exit codes are one-per-failure-class (`decos_bench::exitcode`,
//! README §"Exit codes"): 0 ok, 1 failure, 2 usage, 3 spec rejected,
//! 4 store corrupt, 5 determinism mismatch, 6 perf-gate regression.

use decos_bench::experiments as exp;
use decos_bench::{cliflags, compare, exitcode, flightdump, perf, storecli, Effort};

const IDS: &[&str] = &[
    "e1-architecture",
    "e2-taxonomy",
    "e3-component",
    "e4-job",
    "e5-bathtub",
    "e6-patterns",
    "e7-trust",
    "e8-judgment",
    "e9-actions",
    "e10-assumptions",
    "e11-alpha",
    "e12-ablation",
    "e13-service-loop",
    "e14-diag-degradation",
];

fn run_one(id: &str, effort: Effort, json: bool) {
    macro_rules! emit {
        ($result:expr) => {{
            let r = $result;
            if json {
                println!("{}", serde_json::to_string_pretty(&r).expect("serializable"));
            } else {
                println!("{}", r.render());
            }
        }};
    }
    match id {
        "bench-fleet" => run_bench(perf::bench_fleet(effort), "BENCH_fleet.json"),
        "bench-slot" => run_bench(perf::bench_slot(effort), "BENCH_slot.json"),
        "e1-architecture" => emit!(exp::e1_architecture()),
        "e2-taxonomy" => emit!(exp::e2_taxonomy(effort)),
        "e3-component" => emit!(exp::e3_component(effort)),
        "e4-job" => emit!(exp::e4_job(effort)),
        "e5-bathtub" => emit!(exp::e5_bathtub(effort)),
        "e6-patterns" => emit!(exp::e6_patterns(effort)),
        "e7-trust" => emit!(exp::e7_trust(effort)),
        "e8-judgment" => emit!(exp::e8_judgment(effort)),
        "e9-actions" => emit!(exp::e9_actions(effort)),
        "e10-assumptions" => emit!(exp::e10_assumptions(effort)),
        "e11-alpha" => emit!(exp::e11_alpha(effort)),
        "e12-ablation" => emit!(exp::e12_ablation(effort)),
        "e13-service-loop" => emit!(exp::e13_service_loop(effort)),
        "e14-diag-degradation" => emit!(exp::e14_diag_degradation(effort)),
        other => {
            eprintln!("unknown experiment '{other}'; available: {IDS:?} or 'all'");
            std::process::exit(exitcode::USAGE);
        }
    }
}

/// Runs one BENCH shape: writes the report, prints the headline, and exits
/// nonzero when the same-seed double run was not counter-deterministic.
fn run_bench(report: perf::BenchReport, path: &str) {
    perf::write_report(&report, path).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(exitcode::FAILURE);
    });
    println!(
        "{path}: {:.0} slots/sec{} deterministic={}",
        report.slots_per_sec,
        report.vehicles_per_sec.map_or_else(String::new, |v| format!(", {v:.2} vehicles/sec")),
        report.deterministic
    );
    if !report.deterministic {
        eprintln!("FAIL: same-seed runs produced different counter snapshots");
        std::process::exit(exitcode::DETERMINISM);
    }
}

/// Streams a per-round JSONL trace of the reference connector campaign.
fn run_trace(path: &str, effort: Effort) {
    use decos::prelude::*;
    let rounds = effort.scale(2_000);
    let c = Campaign::reference(
        decos::faults::campaign::connector_campaign(NodeId(2), 800.0),
        10.0,
        rounds,
        2026,
    );
    match perf::traced_campaign(&c, path) {
        Ok(out) => {
            let snap = out.telemetry.expect("telemetry on");
            println!(
                "{path}: {rounds} rows, fingerprint {} chars",
                snap.counter_fingerprint().len()
            );
        }
        Err(e) => {
            eprintln!("trace failed: {e}");
            std::process::exit(exitcode::FAILURE);
        }
    }
}

/// Records a flight-recorder dump of the reference connector campaign
/// (the `--trace` campaign, recorder on) and always writes it — the
/// on-anomaly policy applies to experiment sweeps, not to an explicit
/// dump request.
fn run_flightrec(path: &str, effort: Effort) {
    use decos::prelude::*;
    let rounds = effort.scale(2_000);
    let c = Campaign::reference(
        decos::faults::campaign::connector_campaign(NodeId(2), 800.0),
        10.0,
        rounds,
        2026,
    );
    let opts = RunOptions { telemetry: true, flightrec: true, ..Default::default() };
    let out =
        decos::runner::run_campaign_opts(&c, EngineParams::default(), opts, &mut [], |_, _, _| {})
            .unwrap_or_else(|e| {
                eprintln!("flightrec campaign failed: {e}");
                std::process::exit(exitcode::FAILURE);
            });
    let trace = out.trace.as_ref().expect("flightrec on");
    flightdump::write_flightrec(trace, path).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(exitcode::FAILURE);
    });
    println!(
        "{path}: {} events ({} overwritten), anomalous={}",
        trace.events.len(),
        trace.dropped,
        flightdump::is_anomalous(&out)
    );
}

/// Renders a `decos-flightrec/1` dump as a fault timeline + latency table.
fn run_trace_report(path: &str) {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(exitcode::FAILURE);
    });
    let events = flightdump::read_flightrec(&body).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(exitcode::FAILURE);
    });
    print!("{}", flightdump::render_trace_report(&events));
}

/// Renders the phase-share table from a committed `BENCH_*.json`: what
/// percent of the pipeline's wall time each phase accounts for.
fn run_phase_shares(path: &str) {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(exitcode::FAILURE);
    });
    let phases = (|| -> Result<Vec<(String, u64, f64)>, serde::value::DeError> {
        let v = serde::value::parse_embedded(&body)?;
        let entries = v.as_map()?;
        let mut out = Vec::new();
        for p in serde::value::field(entries, "phases")?.as_seq()? {
            let pm = p.as_map()?;
            out.push((
                serde::value::field(pm, "name")?.as_str()?.to_string(),
                serde::value::field(pm, "count")?.as_u64()?,
                serde::value::field(pm, "mean_ns")?.as_f64()?,
            ));
        }
        Ok(out)
    })()
    .unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(exitcode::FAILURE);
    });
    println!();
    print!("{}", flightdump::render_phase_shares(&flightdump::phase_shares(&phases)));
}

/// Strict numeric flag lookup ([`cliflags::numeric_flag`]): a present
/// flag with a missing or malformed value is a usage error (exit 2),
/// never a silent fallback to the default workload.
fn numeric_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    cliflags::numeric_flag(args, name).unwrap_or_else(|msg| {
        eprintln!("usage error: {msg}");
        std::process::exit(exitcode::USAGE);
    })
}

/// `repro fleet` without `--store`: one streaming run of the sharded
/// fleet executor (DESIGN.md §16). Defaults to the BENCH headline
/// workload — effort × 10⁶ vehicles, [`perf::FLEET_BENCH_ROUNDS`] rounds
/// each — and with `--telemetry` regenerates `BENCH_fleet.json` from the
/// same workload (warm-up + shard ladder).
fn run_fleet_scale(
    o: &storecli::StoreCliOpts,
    shards: Option<usize>,
    effort: Effort,
    telemetry: bool,
) {
    use decos::prelude::*;
    let cfg = FleetConfig {
        vehicles: o.vehicles.unwrap_or_else(|| effort.scale(perf::FLEET_BENCH_VEHICLES)),
        rounds: o.rounds.unwrap_or(perf::FLEET_BENCH_ROUNDS),
        accel: o.accel.unwrap_or(10.0),
        seed: o.seed.unwrap_or(2026),
    };
    if telemetry {
        run_bench(perf::bench_fleet_workload(cfg, shards, effort.0), "BENCH_fleet.json");
        return;
    }
    match perf::fleet_once(cfg, shards) {
        Ok((out, wall_secs)) => {
            let snap = out.telemetry.as_ref().expect("telemetry on");
            let slots = snap.counter("slots_simulated").unwrap_or(0);
            println!(
                "fleet vehicles={} rounds={} seed={} shards={}: {:.2}s wall, \
                 {:.0} vehicles/sec, {:.0} slots/sec",
                cfg.vehicles,
                cfg.rounds,
                cfg.seed,
                shards.map_or_else(|| "auto".to_string(), |s| s.to_string()),
                wall_secs,
                cfg.vehicles as f64 / wall_secs,
                slots as f64 / wall_secs,
            );
            println!(
                "  nff={:.3} degraded={} retained={}/{} (stride {}) fingerprint_hash={:016x}",
                out.decos.nff_ratio(),
                out.degraded_vehicles,
                out.vehicles.len(),
                out.vehicles.total(),
                out.vehicles.stride(),
                decos::store::fnv1a(snap.counter_fingerprint().as_bytes())
            );
        }
        Err(e) => {
            eprintln!("fleet failed: {e}");
            std::process::exit(exitcode::FAILURE);
        }
    }
}

/// The perf-trajectory gate: exits 6 on a regression beyond tolerance,
/// 5 on a determinism mismatch.
fn run_bench_compare(effort: Effort, tolerance: f64) {
    let results = compare::bench_compare(effort, tolerance, "BENCH_fleet.json", "BENCH_slot.json")
        .unwrap_or_else(|e| {
            eprintln!("bench-compare: {e}");
            std::process::exit(exitcode::FAILURE);
        });
    let mut failed = false;
    let mut nondeterministic = false;
    for r in &results {
        println!(
            "{}: baseline {:.0} slots/sec, current {:.0} slots/sec ({:+.1}%) — {}",
            r.name,
            r.baseline,
            r.current,
            (r.current / r.baseline - 1.0) * 100.0,
            if r.passed() {
                "ok"
            } else if !r.deterministic {
                "FAIL (non-deterministic)"
            } else if r.regressed {
                "FAIL (regression)"
            } else if r.vehicles.is_some_and(|v| v.regressed) {
                "FAIL (vehicles/sec regression)"
            } else {
                "FAIL (phase regression)"
            }
        );
        if let Some(v) = r.vehicles {
            println!(
                "  vehicles/sec: baseline {:.0}, current {:.0} ({:+.1}%) — {}",
                v.baseline,
                v.current,
                (v.current / v.baseline - 1.0) * 100.0,
                if v.regressed { "FAIL" } else { "ok" }
            );
        }
        for p in &r.phases {
            println!(
                "  {} p50: baseline {} ns, current {} ns — {}",
                p.name,
                p.baseline_p50_ns,
                p.current_p50_ns,
                if p.regressed { "FAIL" } else { "ok" }
            );
        }
        failed |= !r.passed();
        nondeterministic |= !r.deterministic;
    }
    if failed {
        eprintln!("FAIL: perf trajectory gate (tolerance {:.0}%)", tolerance * 100.0);
        // Determinism breakage outranks a perf regression as a verdict:
        // a nondeterministic run's timing numbers aren't trustworthy.
        std::process::exit(if nondeterministic {
            exitcode::DETERMINISM
        } else {
            exitcode::PERF_GATE
        });
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let flag_value = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));
    let effort = numeric_flag(&args, "--effort").map_or(Effort(1.0), Effort);
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let trace = flag_value("--trace").cloned();
    let flightrec = flag_value("--flightrec").cloned();
    let tolerance = numeric_flag(&args, "--tolerance").unwrap_or(compare::DEFAULT_TOLERANCE);
    let store_dir = flag_value("--store").cloned();
    let resume_dir = flag_value("--resume").cloned();
    let shards: Option<usize> = numeric_flag(&args, "--shards");
    let store_opts = storecli::StoreCliOpts {
        rounds: numeric_flag(&args, "--rounds"),
        vehicles: numeric_flag(&args, "--vehicles"),
        seed: numeric_flag(&args, "--seed"),
        accel: numeric_flag(&args, "--accel"),
        snapshot_every: numeric_flag(&args, "--snapshot-every"),
        sync_every: numeric_flag(&args, "--sync-every"),
        chunk: numeric_flag(&args, "--chunk"),
    };
    const VALUE_FLAGS: &[&str] = &[
        "--effort",
        "--trace",
        "--flightrec",
        "--tolerance",
        "--store",
        "--resume",
        "--rounds",
        "--vehicles",
        "--seed",
        "--accel",
        "--snapshot-every",
        "--sync-every",
        "--chunk",
        "--shards",
    ];
    let ids: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Skip flags and flag values (--effort 0.2, --trace out.jsonl).
            !a.starts_with("--")
                && args.get(i.wrapping_sub(1)).is_none_or(|p| !VALUE_FLAGS.contains(&p.as_str()))
        })
        .map(|(_, s)| s.as_str())
        .collect();
    // Subcommands with their own argument shapes come first.
    match ids.first() {
        Some(&"campaign") | Some(&"fleet") if store_dir.is_some() => {
            let dir = store_dir.as_deref().expect("guarded above");
            let code = if ids[0] == "campaign" {
                storecli::cmd_campaign(dir, &store_opts)
            } else {
                storecli::cmd_fleet(dir, &store_opts)
            };
            std::process::exit(code);
        }
        Some(&"fleet") => {
            // Storeless fleet = the streaming scale workload (§16).
            run_fleet_scale(&store_opts, shards, effort, telemetry);
            return;
        }
        Some(&"campaign") => {
            eprintln!("usage: repro campaign --store <dir> [--rounds N] [--seed N] ...");
            std::process::exit(exitcode::USAGE);
        }
        Some(&"resume") => {
            let Some(dir) = ids.get(1) else {
                eprintln!("usage: repro resume <store-dir> [--rounds N] [--vehicles N]");
                std::process::exit(exitcode::USAGE);
            };
            std::process::exit(storecli::cmd_resume(dir, &store_opts));
        }
        Some(&"store-stat") => {
            let Some(dir) = ids.get(1) else {
                eprintln!("usage: repro store-stat <store-dir>");
                std::process::exit(exitcode::USAGE);
            };
            std::process::exit(storecli::cmd_store_stat(dir));
        }
        _ => {}
    }
    if let Some(dir) = &resume_dir {
        // `--resume <dir>` is shorthand for the resume subcommand.
        std::process::exit(storecli::cmd_resume(dir, &store_opts));
    }
    if ids.first() == Some(&"trace-report") {
        let Some(path) = ids.get(1) else {
            eprintln!("usage: repro trace-report <flightrec.jsonl> [BENCH_*.json]");
            std::process::exit(exitcode::USAGE);
        };
        run_trace_report(path);
        if let Some(bench) = ids.get(2) {
            run_phase_shares(bench);
        }
        return;
    }
    if ids.first() == Some(&"bench-compare") {
        run_bench_compare(effort, tolerance);
        return;
    }
    if telemetry {
        // Shorthand for both BENCH emitters.
        run_bench(perf::bench_fleet(effort), "BENCH_fleet.json");
        run_bench(perf::bench_slot(effort), "BENCH_slot.json");
    }
    if let Some(path) = &trace {
        run_trace(path, effort);
    }
    if let Some(path) = &flightrec {
        run_flightrec(path, effort);
    }
    if ids.is_empty() {
        if telemetry || trace.is_some() || flightrec.is_some() {
            return;
        }
        eprintln!(
            "usage: repro <experiment|all> [--json] [--effort <f>] [--telemetry] \
             [--trace <path>] [--flightrec <path>]"
        );
        eprintln!("       repro trace-report <flightrec.jsonl> [BENCH_*.json]");
        eprintln!("       repro bench-compare [--effort <f>] [--tolerance <f>]");
        eprintln!("       repro fleet [--vehicles N] [--rounds N] [--shards N] [--telemetry]");
        eprintln!("       repro campaign|fleet --store <dir> [--rounds N] [--vehicles N] ...");
        eprintln!("       repro resume <dir> | repro store-stat <dir>");
        eprintln!("experiments: {IDS:?} plus bench-fleet, bench-slot");
        std::process::exit(exitcode::USAGE);
    }
    for id in ids {
        if id == "all" {
            for e in IDS {
                println!("================================================================");
                run_one(e, effort, json);
            }
        } else {
            run_one(id, effort, json);
        }
    }
}
