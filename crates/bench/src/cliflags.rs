//! Strict numeric flag parsing for the `repro` CLI.
//!
//! The historical bug this module replaces: every numeric flag went
//! through `flag_value(name).and_then(|v| v.parse().ok())`, so a typo
//! like `--vehicles 24x` silently fell back to the default workload
//! instead of failing. Malformed values are now hard errors (the binary
//! maps them to exit 2), and `_` digit separators are accepted so the
//! million-vehicle headline reads as `--vehicles 1_000_000`.

use std::str::FromStr;

/// Parses a numeric flag value strictly. `_` separators are allowed
/// between digits (`1_000_000`); leading/trailing/doubled `_` and
/// anything the target type refuses (`24x`, `1.5` for an integer) are
/// errors. The returned message names the flag and echoes the value.
pub fn parse_numeric<T: FromStr>(name: &str, raw: &str) -> Result<T, String> {
    let separators_ok = !raw.starts_with('_') && !raw.ends_with('_') && !raw.contains("__");
    if separators_ok {
        let cleaned: String = raw.chars().filter(|c| *c != '_').collect();
        if let Ok(v) = cleaned.parse() {
            return Ok(v);
        }
    }
    Err(format!("{name} expects a number, got '{raw}'"))
}

/// Looks up `name` in `args` and strictly parses the following value.
/// Absent flag → `Ok(None)`. Present flag with a missing value (end of
/// args or another `--flag`) or a malformed one → `Err(message)`.
pub fn numeric_flag<T: FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(raw) if !raw.starts_with("--") => parse_numeric(name, raw).map(Some),
        _ => Err(format!("{name} expects a value")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underscored_million_parses_as_one_million() {
        assert_eq!(parse_numeric::<u64>("--vehicles", "1_000_000"), Ok(1_000_000));
    }

    #[test]
    fn plain_integers_and_floats_parse() {
        assert_eq!(parse_numeric::<u64>("--rounds", "40"), Ok(40));
        assert_eq!(parse_numeric::<f64>("--effort", "0.15"), Ok(0.15));
        assert_eq!(parse_numeric::<f64>("--accel", "1_0.5"), Ok(10.5));
    }

    #[test]
    fn malformed_values_are_errors_not_fallbacks() {
        for raw in ["24x", "", "_5", "5_", "1__0", "-", "0x10"] {
            let r = parse_numeric::<u64>("--vehicles", raw);
            assert!(r.is_err(), "'{raw}' must be rejected, got {r:?}");
            assert!(r.unwrap_err().contains("--vehicles"), "error names the flag");
        }
        assert!(parse_numeric::<u64>("--seed", "1.5").is_err(), "float for integer flag");
    }

    #[test]
    fn missing_and_flag_shaped_values_are_errors() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(numeric_flag::<u64>(&args(&["--vehicles", "7"]), "--vehicles"), Ok(Some(7)));
        assert_eq!(numeric_flag::<u64>(&args(&["--rounds", "7"]), "--vehicles"), Ok(None));
        assert!(numeric_flag::<u64>(&args(&["--vehicles"]), "--vehicles").is_err());
        assert!(numeric_flag::<u64>(&args(&["--vehicles", "--rounds"]), "--vehicles").is_err());
    }
}
