//! Performance sinks for the telemetry layer: `BENCH_*.json` emitters and
//! the per-round JSONL trace writer.
//!
//! Two benchmark shapes track the repo's perf trajectory:
//!
//! * [`bench_fleet`] — the sharded streaming fleet executor end to end
//!   (vehicles/sec, slots/sec, per-shard-count scaling), written to
//!   `BENCH_fleet.json`. The headline workload is a million short
//!   vehicles ([`FLEET_BENCH_ROUNDS`] rounds each): fleet *throughput*
//!   is the claim, per-vehicle depth is the slot shape's job;
//! * [`bench_slot`] — a single campaign through the full slot pipeline
//!   (slots/sec plus per-phase p50/p99), written to `BENCH_slot.json`.
//!
//! Both run their workload **twice with the same seed** and record whether
//! the two telemetry counter fingerprints agree ([`BenchReport::deterministic`]).
//! CI treats a mismatch as a hard failure: counters are part of the
//! determinism contract, wall-time spans are not (DESIGN.md §11).
//!
//! The [`TraceWriter`] is the third sink: one JSON object per TDMA round
//! with the *cumulative* dissemination/engine counters, suitable for
//! plotting a run's trajectory or diffing two runs row by row.

use std::io::Write as _;
use std::time::Instant;

use decos::prelude::*;
use serde::Serialize;

use crate::Effort;

/// Schema tag for `BENCH_fleet.json`. `/3`: the workload moved to the
/// sharded streaming executor (million-vehicle headline, fixed
/// [`FLEET_BENCH_ROUNDS`] per vehicle so `vehicles_per_sec` is comparable
/// across efforts) and the report gained the per-shard-count `scaling`
/// ladder. `/2` added the fault-lifecycle latency counters/gauges.
pub const FLEET_SCHEMA: &str = "decos-bench-fleet/3";

/// Rounds per vehicle in the fleet benchmark. Deliberately *not* scaled
/// by effort: effort scales the vehicle count only, so `vehicles_per_sec`
/// measures the same per-vehicle workload at every effort and stays
/// gateable across efforts.
pub const FLEET_BENCH_ROUNDS: u64 = 40;

/// Vehicles in the fleet benchmark at effort 1.0 — the ROADMAP item 1
/// fleet scale (10⁶).
pub const FLEET_BENCH_VEHICLES: u64 = 1_000_000;
/// Schema tag for `BENCH_slot.json`. `/2`: `vehicles_per_sec` is now
/// `null` for this non-fleet shape (it used to be a meaningless `0.0`),
/// and the lifecycle latency metrics joined the registry.
pub const SLOT_SCHEMA: &str = "decos-bench-slot/2";
/// Schema tag for each JSONL trace row.
pub const TRACE_SCHEMA: &str = "decos-trace-round/1";

/// One rung of the fleet benchmark's shard-scaling ladder.
#[derive(Debug, Clone, Serialize)]
pub struct ShardScaling {
    /// Executor shard count of this rung.
    pub shards: usize,
    /// Wall-clock seconds of the rung's timed run.
    pub wall_secs: f64,
    /// Vehicles completed per wall-clock second at this shard count.
    pub vehicles_per_sec: f64,
}

/// Per-phase latency summary extracted from a [`TelemetrySnapshot`].
#[derive(Debug, Clone, Serialize)]
pub struct PhaseQuantiles {
    /// Phase name from the static registry (kernel, ttnet, detect, ...).
    pub name: String,
    /// Laps recorded.
    pub count: u64,
    /// Mean lap, nanoseconds.
    pub mean_ns: f64,
    /// Median lap (log₂-bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile lap (log₂-bucket upper bound), nanoseconds.
    pub p99_ns: u64,
    /// Worst lap, nanoseconds.
    pub max_ns: u64,
}

/// One `BENCH_*.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Schema tag ([`FLEET_SCHEMA`] or [`SLOT_SCHEMA`]).
    pub schema: String,
    /// Workload shape, human-readable (vehicles/rounds/accel/seed).
    pub workload: String,
    /// Effort multiplier the workload was scaled by.
    pub effort: f64,
    /// Wall-clock seconds of the measured (second) run.
    pub wall_secs: f64,
    /// Vehicles completed per wall-clock second. Fleet shape only —
    /// `null` for single-campaign shapes, where the notion is meaningless.
    pub vehicles_per_sec: Option<f64>,
    /// Pipeline slots stepped per wall-clock second.
    pub slots_per_sec: f64,
    /// Whether two same-seed runs produced byte-identical counter
    /// fingerprints. CI fails the build when false.
    pub deterministic: bool,
    /// Canonical `name=value;` counter/gauge fingerprint of the run.
    pub counter_fingerprint: String,
    /// Shard-count scaling ladder of the fleet shape (1, powers of two,
    /// then the host's available parallelism; a pinned `--shards` run has
    /// one rung). Empty for the slot shape. Timing fields — *not* part of
    /// the determinism contract; the counter fingerprints of every rung
    /// *are*, and feed [`BenchReport::deterministic`].
    pub scaling: Vec<ShardScaling>,
    /// Per-phase wall-time quantiles (timing fields — *not* part of the
    /// determinism contract).
    pub phases: Vec<PhaseQuantiles>,
    /// The full telemetry snapshot of the measured run.
    pub telemetry: TelemetrySnapshot,
}

fn phase_quantiles(snap: &TelemetrySnapshot) -> Vec<PhaseQuantiles> {
    snap.phases
        .iter()
        .map(|p| PhaseQuantiles {
            name: p.name.clone(),
            count: p.count,
            mean_ns: p.mean_ns,
            p50_ns: p.p50_ns,
            p99_ns: p.p99_ns,
            max_ns: p.max_ns,
        })
        .collect()
}

/// Benchmarks the fleet executor on the headline workload:
/// `effort × 10⁶` vehicles, [`FLEET_BENCH_ROUNDS`] rounds each.
pub fn bench_fleet(effort: Effort) -> BenchReport {
    let cfg = FleetConfig {
        vehicles: effort.scale(FLEET_BENCH_VEHICLES),
        rounds: FLEET_BENCH_ROUNDS,
        accel: 10.0,
        seed: 2026,
    };
    bench_fleet_workload(cfg, None, effort.0)
}

/// The shard-count ladder the fleet benchmark climbs: 1, powers of two,
/// then the host's available parallelism.
fn shard_ladder() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut ladder = vec![1];
    let mut s = 2;
    while s < max {
        ladder.push(s);
        s *= 2;
    }
    if max > 1 {
        ladder.push(max);
    }
    ladder
}

/// Benchmarks an explicit fleet workload: one untimed warm-up run, then
/// one timed run per shard-ladder rung (a pinned `shards` collapses the
/// ladder to that one rung). Every run uses the same seed, and the report
/// is `deterministic` only if *all* counter fingerprints agree — which
/// folds the shard-count-invariance contract into the CI gate.
pub fn bench_fleet_workload(cfg: FleetConfig, shards: Option<usize>, effort: f64) -> BenchReport {
    let spec = fig10::reference_spec();
    let params = EngineParams::default();
    let opts = FleetOptions { telemetry: true, ..FleetOptions::default() };
    let first = run_fleet_configured(&spec, cfg, params, &opts).expect("fleet run");
    let reference_fp = first.telemetry.expect("telemetry on").counter_fingerprint();
    let ladder = match shards {
        Some(s) => vec![s.max(1)],
        None => shard_ladder(),
    };
    let mut scaling = Vec::with_capacity(ladder.len());
    let mut deterministic = true;
    let mut wall_secs = 0.0;
    let mut last = None;
    for s in ladder {
        let opts = FleetOptions { shards: Some(s), ..opts.clone() };
        let t0 = Instant::now();
        let out = run_fleet_configured(&spec, cfg, params, &opts).expect("fleet run");
        wall_secs = t0.elapsed().as_secs_f64();
        let fp = out.telemetry.as_ref().expect("telemetry on").counter_fingerprint();
        deterministic &= fp == reference_fp;
        scaling.push(ShardScaling {
            shards: s,
            wall_secs,
            vehicles_per_sec: cfg.vehicles as f64 / wall_secs,
        });
        last = Some(out);
    }
    let snap = last.expect("ladder has at least one rung").telemetry.expect("telemetry on");
    let slots = snap.counter("slots_simulated").unwrap_or(0);
    BenchReport {
        schema: FLEET_SCHEMA.to_string(),
        workload: format!(
            "fleet vehicles={} rounds={} accel={} seed={}",
            cfg.vehicles, cfg.rounds, cfg.accel, cfg.seed
        ),
        effort,
        wall_secs,
        vehicles_per_sec: Some(cfg.vehicles as f64 / wall_secs),
        slots_per_sec: slots as f64 / wall_secs,
        deterministic,
        counter_fingerprint: snap.counter_fingerprint(),
        scaling,
        phases: phase_quantiles(&snap),
        telemetry: snap,
    }
}

/// One timed streaming-fleet run (telemetry on so the caller can print
/// the counter fingerprint). The cheap path behind `repro fleet` without
/// `--telemetry`: no warm-up, no ladder.
pub fn fleet_once(
    cfg: FleetConfig,
    shards: Option<usize>,
) -> Result<(FleetOutcome, f64), CampaignError> {
    let spec = fig10::reference_spec();
    let opts = FleetOptions { telemetry: true, shards, ..FleetOptions::default() };
    let t0 = Instant::now();
    let out = run_fleet_configured(&spec, cfg, EngineParams::default(), &opts)?;
    Ok((out, t0.elapsed().as_secs_f64()))
}

/// Benchmarks a single campaign through the full slot pipeline: two
/// same-seed telemetry runs, timed on the second (warm) one.
pub fn bench_slot(effort: Effort) -> BenchReport {
    let rounds = effort.scale(4_000);
    let c = Campaign::reference(
        decos::faults::campaign::connector_campaign(NodeId(2), 800.0),
        10.0,
        rounds,
        2026,
    );
    let opts = RunOptions { telemetry: true, ..Default::default() };
    let run = |c: &Campaign| {
        run_campaign_opts(c, EngineParams::default(), opts, &mut [], |_, _, _| {})
            .expect("campaign run")
    };
    let first = run(&c);
    let t0 = Instant::now();
    let second = run(&c);
    let wall_secs = t0.elapsed().as_secs_f64();
    let snap = second.telemetry.expect("telemetry on");
    let fp_a = first.telemetry.expect("telemetry on").counter_fingerprint();
    let fp_b = snap.counter_fingerprint();
    let slots = snap.counter("slots_simulated").unwrap_or(0);
    BenchReport {
        schema: SLOT_SCHEMA.to_string(),
        workload: format!("campaign connector rounds={rounds} accel=10 seed=2026"),
        effort: effort.0,
        wall_secs,
        vehicles_per_sec: None,
        slots_per_sec: slots as f64 / wall_secs,
        deterministic: fp_a == fp_b,
        counter_fingerprint: fp_b,
        scaling: Vec::new(),
        phases: phase_quantiles(&snap),
        telemetry: snap,
    }
}

/// Writes a [`BenchReport`] as pretty-printed JSON, atomically: the
/// committed `BENCH_*.json` baselines gate CI, so a crash mid-write must
/// never leave a truncated document behind.
pub fn write_report(report: &BenchReport, path: &str) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(report).expect("serializable");
    decos::store::write_atomic(std::path::Path::new(path), (json + "\n").as_bytes())
}

/// One cumulative-counter row of the JSONL trace (one per TDMA round).
#[derive(Debug, Clone, Serialize)]
pub struct TraceRow {
    /// Schema tag ([`TRACE_SCHEMA`]).
    pub schema: &'static str,
    /// TDMA round index (0-based).
    pub round: u64,
    /// Simulated time at the end of the round, seconds.
    pub t_secs: f64,
    /// Symptoms offered so far.
    pub offered: u64,
    /// Symptoms delivered so far.
    pub delivered: u64,
    /// Symptoms dropped so far.
    pub dropped: u64,
    /// Frames discarded by CRC so far.
    pub corrupted: u64,
    /// Frames rejected by plausibility screening so far.
    pub rejected: u64,
    /// Frames that arrived late so far.
    pub delayed: u64,
    /// Frames flagged as forged so far.
    pub forged_suspected: u64,
    /// Running delivery quality of the diagnostic path.
    pub quality: f64,
    /// Diagnostic-component failovers so far.
    pub failovers: u32,
    /// Rounds with the diagnostic path fully down so far.
    pub crashed_rounds: u64,
    /// FRU-rounds spent with trust frozen so far.
    pub frozen_rounds: u64,
}

/// Streams one [`TraceRow`] per round into a JSONL file.
///
/// Drive it from the [`run_campaign_with`] observer; rows are written on
/// the last slot of every round. Counters are cumulative — diffing
/// consecutive rows recovers per-round rates.
///
/// Rows stream into a `.tmp` sibling; [`TraceWriter::finish`] syncs and
/// renames it over the final path, so readers only ever see a complete
/// trace — an aborted run leaves the previous trace (if any) untouched.
pub struct TraceWriter {
    out: std::io::BufWriter<std::fs::File>,
    path: std::path::PathBuf,
    tmp: std::path::PathBuf,
    rows: u64,
}

impl TraceWriter {
    /// Creates (truncates) the trace's temp sibling; the final path is
    /// untouched until [`TraceWriter::finish`].
    pub fn create(path: &str) -> std::io::Result<Self> {
        let path = std::path::PathBuf::from(path);
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".tmp");
        let tmp = path.with_file_name(name);
        Ok(Self { out: std::io::BufWriter::new(std::fs::File::create(&tmp)?), path, tmp, rows: 0 })
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Observes one slot; writes a row when `rec` closes a round.
    pub fn on_slot(
        &mut self,
        sim: &ClusterSim,
        engine: &DiagnosticEngine,
        rec: &decos::platform::SlotRecord,
    ) {
        let spr = sim.schedule().slots_per_round();
        if rec.addr.slot.0 != spr - 1 {
            return;
        }
        let stats = engine.dissemination_stats();
        let row = TraceRow {
            schema: TRACE_SCHEMA,
            round: rec.addr.round,
            t_secs: rec.start.as_secs_f64(),
            offered: stats.offered,
            delivered: stats.delivered,
            dropped: stats.dropped,
            corrupted: stats.corrupted,
            rejected: stats.rejected,
            delayed: stats.delayed,
            forged_suspected: stats.forged_suspected,
            quality: engine.delivery_quality(),
            failovers: engine.failovers(),
            crashed_rounds: engine.crashed_rounds(),
            frozen_rounds: engine.frozen_rounds(),
        };
        let line = serde_json::to_string(&row).expect("serializable");
        writeln!(self.out, "{line}").expect("trace write");
        self.rows += 1;
    }

    /// Flushes, syncs, and renames the temp file over the final path —
    /// the trace's commit point.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        drop(self.out);
        std::fs::rename(&self.tmp, &self.path)
    }
}

/// Runs a campaign with telemetry on and a JSONL trace streaming to
/// `path`; returns the outcome (carrying the [`TelemetrySnapshot`]).
pub fn traced_campaign(
    c: &Campaign,
    path: &str,
) -> Result<CampaignOutcome, Box<dyn std::error::Error>> {
    let mut writer = TraceWriter::create(path)?;
    let opts = RunOptions { telemetry: true, ..Default::default() };
    let out = run_campaign_opts(c, EngineParams::default(), opts, &mut [], |sim, engine, rec| {
        writer.on_slot(sim, engine, rec);
    })
    .map_err(|e| format!("{e:?}"))?;
    writer.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_bench_is_deterministic_and_fast_enough_to_test() {
        let r = bench_slot(Effort(0.05));
        assert!(r.deterministic, "same-seed counter fingerprints must agree");
        assert!(r.slots_per_sec > 0.0);
        assert_eq!(r.schema, SLOT_SCHEMA);
        assert_eq!(r.vehicles_per_sec, None, "slot shape has no vehicles/sec");
        assert_eq!(r.phases.len(), 7, "all seven pipeline phases present");
        assert!(r.phases.iter().all(|p| p.count > 0), "every phase was timed");
    }

    #[test]
    fn fleet_bench_is_deterministic() {
        // Effort 0.0002 of the million-vehicle headline = 200 vehicles,
        // still FLEET_BENCH_ROUNDS rounds each (rounds don't scale).
        let r = bench_fleet(Effort(0.0002));
        assert!(r.deterministic, "fingerprints must agree across runs and shard counts");
        assert_eq!(r.schema, FLEET_SCHEMA);
        assert!(r.vehicles_per_sec.expect("fleet shape reports vehicles/sec") > 0.0);
        assert_eq!(r.telemetry.counter("vehicles").unwrap(), 200);
        assert_eq!(
            r.telemetry.counter("slots_simulated").unwrap()
                % r.telemetry.counter("vehicles").unwrap(),
            0,
            "every vehicle simulates the same slot count"
        );
        assert!(!r.scaling.is_empty(), "fleet shape records its shard ladder");
        assert_eq!(r.scaling[0].shards, 1, "ladder starts at one shard");
    }

    #[test]
    fn fleet_bench_ladder_collapses_when_shards_are_pinned() {
        let cfg = FleetConfig { vehicles: 96, rounds: 30, accel: 10.0, seed: 9 };
        let r = bench_fleet_workload(cfg, Some(2), 1.0);
        assert!(r.deterministic, "two shards must fingerprint like the warm-up run");
        assert_eq!(r.scaling.len(), 1);
        assert_eq!(r.scaling[0].shards, 2);
    }

    #[test]
    fn trace_writer_emits_one_row_per_round() {
        let dir = std::env::temp_dir().join("decos-perf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let path = path.to_str().unwrap();
        let rounds = 50;
        let c = Campaign::reference(
            decos::faults::campaign::connector_campaign(NodeId(2), 800.0),
            10.0,
            rounds,
            7,
        );
        let out = traced_campaign(&c, path).unwrap();
        assert!(out.telemetry.is_some());
        let body = std::fs::read_to_string(path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len() as u64, rounds);
        let mut prev_offered = 0;
        let mut last_offered = 0;
        // The `decos-trace-round/1` contract: every row carries every
        // required field, with counters cumulative. Missing or renamed
        // fields fail here, so the schema can't silently drift.
        const REQUIRED_U64: &[&str] = &[
            "round",
            "offered",
            "delivered",
            "dropped",
            "corrupted",
            "rejected",
            "delayed",
            "forged_suspected",
            "failovers",
            "crashed_rounds",
            "frozen_rounds",
        ];
        for line in &lines {
            let v = serde::value::parse_embedded(line).unwrap();
            let entries = v.as_map().unwrap();
            let schema = serde::value::field(entries, "schema").unwrap();
            assert_eq!(schema.as_str().unwrap(), TRACE_SCHEMA);
            for name in REQUIRED_U64 {
                serde::value::field(entries, name)
                    .and_then(|f| f.as_u64())
                    .unwrap_or_else(|e| panic!("required field {name}: {e}"));
            }
            for name in ["t_secs", "quality"] {
                serde::value::field(entries, name)
                    .and_then(|f| f.as_f64())
                    .unwrap_or_else(|e| panic!("required field {name}: {e}"));
            }
            let offered = serde::value::field(entries, "offered").unwrap().as_u64().unwrap();
            assert!(offered >= prev_offered, "counters are cumulative");
            prev_offered = offered;
            last_offered = offered;
        }
        // The last row agrees with the final snapshot.
        let snap = out.telemetry.unwrap();
        assert_eq!(last_offered, snap.counter("symptoms_offered").unwrap());
    }
}
