//! The per-figure experiments (E1–E11). Each function returns a
//! serializable result struct with a `render()` text view; the `repro`
//! binary dispatches on experiment id. EXPERIMENTS.md records paper-vs-
//! measured for every entry.

use decos::diagnosis::{ConfusionMatrix, Subject, SymptomDetectors};
use decos::faults::{campaign, FaultClass, FaultEnvironment, FaultKind, FaultSpec, FruRef};
use decos::prelude::*;
use decos::reliability::{
    empirical_hazard, fleet_failure_rates, AlphaCount, AlphaParams, BathtubModel,
};
use decos::sim::rng::SampleExt as _;
use decos::sim::SeedSource;
use rand::RngExt as _;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Scaling knob: 1.0 = the sizes used for EXPERIMENTS.md; smaller values
/// give quick smoke runs.
#[derive(Debug, Clone, Copy)]
pub struct Effort(pub f64);

impl Effort {
    /// Scales a nominal workload size by the effort factor (min 1).
    pub fn scale(&self, n: u64) -> u64 {
        ((n as f64 * self.0).round() as u64).max(1)
    }
}

// ===========================================================================
// E1 — Figures 1 & 2: the integrated architecture, structurally.
// ===========================================================================

/// Structural self-description of the reference cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E1Architecture {
    /// Components with hosted jobs per DAS.
    pub components: Vec<(String, Vec<String>)>,
    /// DAS inventory: (name, criticality, #jobs, network kind).
    pub dases: Vec<(String, String, usize, String)>,
    /// Core/high-level service inventory.
    pub services: Vec<String>,
    /// Number of LIF records derived.
    pub lif_records: usize,
}

/// Runs E1.
pub fn e1_architecture() -> E1Architecture {
    let spec = fig10::reference_spec();
    let sim = ClusterSim::new(spec.clone(), 0).expect("valid");
    let components = spec
        .components
        .iter()
        .map(|c| {
            let jobs: Vec<String> = spec
                .jobs
                .iter()
                .filter(|j| j.host == c.node)
                .map(|j| format!("{} ({})", j.name, j.das))
                .collect();
            (c.node.to_string(), jobs)
        })
        .collect();
    let dases = spec
        .dases
        .iter()
        .map(|d| {
            let njobs = spec.jobs.iter().filter(|j| j.das == d.id).count();
            let kind = spec
                .jobs
                .iter()
                .filter(|j| j.das == d.id)
                .filter_map(|j| j.behavior.output_vnet())
                .next()
                .and_then(|v| spec.vnets.iter().find(|c| c.id == v))
                .map(|c| format!("{:?}", c.kind))
                .unwrap_or_else(|| "-".into());
            (d.name.clone(), format!("{:?}", d.criticality), njobs, kind)
        })
        .collect();
    E1Architecture {
        components,
        dases,
        services: vec![
            "C1 predictable transport (TDMA schedule)".into(),
            "C2 fault-tolerant clock synchronization (FTA)".into(),
            "C3 strong fault isolation (bus guardians)".into(),
            "C4 consistent diagnosis of failing nodes (membership)".into(),
            "H1 virtual networks (encapsulated overlays)".into(),
            "H2 encapsulation (SC/NSC partitioning)".into(),
            "H3 redundancy management (TMR voting)".into(),
            "H4 virtual diagnostic network + diagnostic DAS".into(),
        ],
        lif_records: sim.lif().len(),
    }
}

impl E1Architecture {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = String::from("E1 — integrated system architecture (Figs. 1 & 2)\n\n");
        for (c, jobs) in &self.components {
            let _ = writeln!(s, "  {c}: {}", jobs.join(", "));
        }
        s.push('\n');
        for (name, crit, n, kind) in &self.dases {
            let _ = writeln!(s, "  DAS {name:<16} {crit:<18} {n} jobs  [{kind}]");
        }
        s.push('\n');
        for svc in &self.services {
            let _ = writeln!(s, "  service: {svc}");
        }
        let _ = writeln!(s, "\n  LIF records derived: {}", self.lif_records);
        s
    }
}

// ===========================================================================
// E2 — Figures 3 & 6: full-taxonomy classification.
// ===========================================================================

/// Confusion-matrix experiment over the whole taxonomy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E2Taxonomy {
    /// Vehicles simulated.
    pub vehicles: u64,
    /// The confusion matrix.
    pub confusion: ConfusionMatrix,
    /// Overall accuracy.
    pub accuracy: f64,
    /// Ground-truth class counts.
    pub class_counts: BTreeMap<String, u64>,
}

/// Runs E2.
pub fn e2_taxonomy(effort: Effort) -> E2Taxonomy {
    let cfg = FleetConfig {
        vehicles: effort.scale(200),
        rounds: effort.scale(4_000),
        accel: 10.0,
        seed: 2005,
    };
    let out = run_fleet(&fig10::reference_spec(), cfg).expect("reference spec analyzes clean");
    E2Taxonomy {
        vehicles: cfg.vehicles,
        accuracy: out.confusion.accuracy(),
        confusion: out.confusion,
        class_counts: out.class_counts,
    }
}

impl E2Taxonomy {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "E2 — taxonomy classification over {} vehicles (Figs. 3 & 6)\n\n{}",
            self.vehicles,
            self.confusion.render()
        );
        let _ = writeln!(s, "\n  accuracy: {:.1} %", self.accuracy * 100.0);
        for (c, n) in &self.class_counts {
            let _ = writeln!(s, "  truth {c:<26} {n}");
        }
        s
    }
}

// ===========================================================================
// E3 / E4 — Figures 4 & 5: per-level classification quality.
// ===========================================================================

/// Precision/recall per class at one FRU level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EClassQuality {
    /// Experiment label.
    pub label: String,
    /// Rows: (class, campaigns, recall, precision).
    pub rows: Vec<(String, u64, f64, f64)>,
    /// The underlying confusion matrix.
    pub confusion: ConfusionMatrix,
}

fn classify_campaigns(
    label: &str,
    cases: Vec<(ClusterSpec, Vec<FaultSpec>, f64, u64)>,
    classes: &[FaultClass],
) -> EClassQuality {
    let outcomes: Vec<(FaultClass, Option<FaultClass>)> = cases
        .into_par_iter()
        .enumerate()
        .map(|(i, (spec, faults, accel, rounds))| {
            let truth_fru = faults.first().map(|f| f.target);
            let truth_class =
                faults.first().map(|f| f.class()).unwrap_or(FaultClass::JobBorderline);
            let c = Campaign { spec, faults, accel, rounds, seed: 9_000 + i as u64 };
            let out = run_campaign(&c).expect("valid spec");
            let predicted = truth_fru
                .or(Some(FruRef::Job(fig10::jobs::C3)))
                .and_then(|f| out.report.verdict_of(f))
                .and_then(|v| v.class);
            (truth_class, predicted)
        })
        .collect();
    let mut confusion = ConfusionMatrix::new();
    let mut per_class: BTreeMap<FaultClass, (u64, u64)> = BTreeMap::new();
    for (t, p) in &outcomes {
        confusion.record(*t, *p);
        let e = per_class.entry(*t).or_insert((0, 0));
        e.0 += 1;
        if *p == Some(*t) {
            e.1 += 1;
        }
    }
    let rows = classes
        .iter()
        .map(|c| {
            let (n, _) = per_class.get(c).copied().unwrap_or((0, 0));
            (c.to_string(), n, confusion.recall(*c), confusion.precision(*c))
        })
        .collect();
    EClassQuality { label: label.into(), rows, confusion }
}

impl EClassQuality {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = format!("{}\n\n", self.label);
        let _ = writeln!(s, "  {:<26}{:>6}{:>9}{:>11}", "class", "n", "recall", "precision");
        for (c, n, r, p) in &self.rows {
            let _ = writeln!(s, "  {c:<26}{n:>6}{:>8.1}%{:>10.1}%", r * 100.0, p * 100.0);
        }
        s.push('\n');
        s.push_str(&self.confusion.render());
        s
    }
}

/// Runs E3 (component fault model, Fig. 4).
pub fn e3_component(effort: Effort) -> EClassQuality {
    let spec = fig10::reference_spec();
    let n = effort.scale(15);
    let mut cases = Vec::new();
    let seeds = SeedSource::new(31);
    for i in 0..n {
        let mut rng = seeds.stream("e3", i);
        let node = NodeId((rng.random::<u32>() % 4) as u16);
        // external: EMI at the node's zone
        cases.push((
            spec.clone(),
            vec![FaultSpec {
                id: 1,
                kind: FaultKind::EmiBurst {
                    rate_per_hour: 4_000.0,
                    duration_ms: 10.0,
                    center: spec.components[node.0 as usize].position,
                    radius_m: 1.0,
                },
                target: FruRef::Component(node),
                onset: SimTime::ZERO,
            }],
            10.0,
            4_000,
        ));
        // borderline: connector
        cases.push((spec.clone(), campaign::connector_campaign(node, 4_000.0), 10.0, 4_000));
        // internal: recurring transient
        cases.push((
            spec.clone(),
            vec![FaultSpec {
                id: 1,
                kind: FaultKind::IcTransient { rate_per_hour: 9_000.0, duration_ms: 4.0 },
                target: FruRef::Component(node),
                onset: SimTime::ZERO,
            }],
            10.0,
            4_000,
        ));
    }
    classify_campaigns(
        "E3 — component fault model (Fig. 4): external / borderline / internal",
        cases,
        &[
            FaultClass::ComponentExternal,
            FaultClass::ComponentBorderline,
            FaultClass::ComponentInternal,
        ],
    )
}

/// Runs E4 (job fault model, Fig. 5).
pub fn e4_job(effort: Effort) -> EClassQuality {
    let spec = fig10::reference_spec();
    let n = effort.scale(12);
    let mut cases = Vec::new();
    for i in 0..n {
        // job borderline: misconfiguration
        let (mspec, truth) = campaign::misconfiguration_campaign(spec.clone(), 16);
        cases.push((mspec, truth, 1.0, 4_000));
        // job inherent software: Bohrbug or Heisenbug
        cases.push((
            spec.clone(),
            campaign::software_campaign(fig10::jobs::A1, i % 2 == 0),
            1.0,
            6_000,
        ));
        // job inherent transducer: stuck or drift
        let kind = if i % 2 == 0 {
            FaultKind::SensorStuck { value: 99.0 }
        } else {
            FaultKind::SensorDrift { per_hour: 2_000.0 }
        };
        cases.push((spec.clone(), campaign::sensor_campaign(fig10::jobs::A1, kind), 1.0, 8_000));
    }
    classify_campaigns(
        "E4 — job fault model (Fig. 5): borderline / software / transducer",
        cases,
        &[
            FaultClass::JobBorderline,
            FaultClass::JobInherentSoftware,
            FaultClass::JobInherentTransducer,
        ],
    )
}

// ===========================================================================
// E5 — Figure 7: the bathtub curve.
// ===========================================================================

/// The regenerated bathtub curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E5Bathtub {
    /// Fleet size sampled.
    pub units: u64,
    /// (years, hazard per year) series.
    pub hazard_per_year: Vec<(f64, f64)>,
    /// Useful-life plateau, failures per 10⁶ units per year.
    pub plateau_per_million_year: f64,
    /// Yearly fleet failure rates (per 10⁶ per year) for the first years.
    pub fleet_rates: Vec<f64>,
}

/// Runs E5.
pub fn e5_bathtub(effort: Effort) -> E5Bathtub {
    let units = effort.scale(300_000);
    let model = BathtubModel::automotive_ecu();
    let seeds = SeedSource::new(5);
    let lifetimes: Vec<f64> = (0..units)
        .into_par_iter()
        .map(|i| {
            let mut rng = seeds.stream("bathtub", i);
            model.sample_failure_hours(&mut rng).hours
        })
        .collect();
    let hpy = 365.25 * 24.0;
    let horizon = 25.0 * hpy;
    let series = empirical_hazard(&lifetimes, horizon, 50);
    let hazard_per_year: Vec<(f64, f64)> =
        series.iter().map(|&(h, hz)| (h / hpy, hz * hpy)).collect();
    let plateau = {
        let window: Vec<f64> = hazard_per_year
            .iter()
            .filter(|(y, _)| (*y > 2.0) && (*y < 6.0))
            .map(|(_, h)| h * 1e6)
            .collect();
        window.iter().sum::<f64>() / window.len().max(1) as f64
    };
    let rates = fleet_failure_rates(&lifetimes, 15);
    E5Bathtub {
        units,
        hazard_per_year,
        plateau_per_million_year: plateau,
        fleet_rates: rates.per_million_per_year,
    }
}

impl E5Bathtub {
    /// Text rendering (log-scale bar chart).
    pub fn render(&self) -> String {
        let mut s = format!("E5 — bathtub curve from {} simulated ECUs (Fig. 7)\n\n", self.units);
        for &(y, h) in &self.hazard_per_year {
            let per_million = h * 1e6;
            let bar = ((per_million.max(1.0)).log10() * 8.0) as usize;
            let _ = writeln!(
                s,
                "  {y:>5.1} y  {per_million:>12.1} /10⁶/y  {}",
                "#".repeat(bar.min(70))
            );
        }
        let _ = writeln!(
            s,
            "\n  useful-life plateau ≈ {:.0} per 10⁶ per year (paper anchor [16]: ~50)",
            self.plateau_per_million_year
        );
        s
    }
}

// ===========================================================================
// E6 — Figure 8: the three fault patterns in time / space / value.
// ===========================================================================

/// Measured dimensional signature of one fault-pattern campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternSignature {
    /// Campaign label (wearout / massive transient / connector).
    pub label: String,
    /// Time dimension: relative growth of the error frequency (OLS slope of
    /// the per-window rate divided by the mean rate; ≫0 = rising).
    pub frequency_trend: f64,
    /// Space dimension: distinct components the matched pattern implicates.
    pub components_affected: usize,
    /// Value dimension: fraction of comm errors that are corruption
    /// (multi-bit) rather than omission.
    pub corruption_fraction: f64,
    /// Value dimension: slope of job output deviation over time (wearout's
    /// "increasing deviation").
    pub deviation_trend: f64,
    /// Which pattern the ONA bank matched most often.
    pub dominant_pattern: String,
    /// Fraction of rounds with symptoms in which the correct pattern fired.
    pub detection_rate: f64,
}

/// The full E6 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E6Patterns {
    /// One signature per Fig. 8 column.
    pub signatures: Vec<PatternSignature>,
}

fn pattern_signature(
    label: &str,
    spec: ClusterSpec,
    faults: Vec<FaultSpec>,
    accel: f64,
    rounds: u64,
    expected_patterns: &[&str],
    seed: u64,
) -> PatternSignature {
    let c = Campaign { spec, faults, accel, rounds, seed };
    let mut freq = decos::sim::stats::RateWindows::new(
        SimTime::ZERO,
        decos::sim::SimDuration::from_millis(400),
    );
    let mut implicated: std::collections::BTreeSet<FruRef> = Default::default();
    let mut om = 0u64;
    let mut crc = 0u64;
    let mut dev_points: Vec<(f64, f64)> = Vec::new();
    let mut pattern_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut rounds_with_matches = 0u64;
    let mut rounds_with_correct = 0u64;
    let mut sim_lif: Vec<decos::platform::PortLif> = Vec::new();

    run_campaign_with(&c, |sim, engine, rec| {
        if sim_lif.is_empty() {
            sim_lif = sim.lif().to_vec();
        }
        for (i, o) in rec.observations.iter().enumerate() {
            use decos::platform::ObsKind;
            match o {
                ObsKind::Omission | ObsKind::TimingViolation { .. } => {
                    om += 1;
                    freq.record(rec.start);
                }
                ObsKind::InvalidCrc => {
                    crc += 1;
                    freq.record(rec.start);
                }
                _ => {}
            }
            let _ = i;
        }
        // Value deviation of carried messages vs their nominal span.
        for (_, msgs) in &rec.sent {
            for m in msgs {
                if let Some(l) = sim_lif.iter().find(|l| l.port == m.src) {
                    let dev = if m.value > l.nominal_max {
                        m.value - l.nominal_max
                    } else if m.value < l.nominal_min {
                        l.nominal_min - m.value
                    } else {
                        0.0
                    };
                    if dev > 0.0 {
                        dev_points.push((rec.start.as_secs_f64(), dev));
                    }
                }
            }
        }
        if rec.addr.slot.0 == 3 {
            let matches = engine.last_matches();
            if !matches.is_empty() {
                rounds_with_matches += 1;
                let expected = |p: &str| expected_patterns.iter().any(|e| p.starts_with(e));
                if matches.iter().any(|m| expected(m.pattern)) {
                    rounds_with_correct += 1;
                }
                for m in matches {
                    *pattern_counts.entry(m.pattern.to_string()).or_insert(0) += 1;
                    if expected(m.pattern) {
                        implicated.insert(m.fru);
                    }
                }
            }
        }
    })
    .expect("valid spec");

    let dominant_pattern = pattern_counts
        .iter()
        .max_by_key(|(_, &n)| n)
        .map(|(p, _)| p.clone())
        .unwrap_or_else(|| "(none)".into());
    // Relative frequency growth: slope of the per-window rate normalized
    // by the mean rate (dimensionless growth per window).
    let rates = freq.rates_per_hour();
    let mean_rate = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
    let rel_trend =
        if mean_rate > 0.0 { freq.trend_slope().unwrap_or(0.0) / mean_rate } else { 0.0 };
    PatternSignature {
        label: label.into(),
        frequency_trend: rel_trend,
        components_affected: implicated.len(),
        corruption_fraction: if om + crc > 0 { crc as f64 / (om + crc) as f64 } else { 0.0 },
        deviation_trend: decos::sim::stats::ols_slope(&dev_points).unwrap_or(0.0),
        dominant_pattern,
        detection_rate: if rounds_with_matches > 0 {
            rounds_with_correct as f64 / rounds_with_matches as f64
        } else {
            0.0
        },
    }
}

/// Runs E6.
pub fn e6_patterns(effort: Effort) -> E6Patterns {
    let spec = fig10::reference_spec();
    let rounds = effort.scale(12_000);
    let signatures = vec![
        pattern_signature(
            "wearout (Fig. 8 col 1)",
            spec.clone(),
            campaign::wearout_campaign(NodeId(1), 100.0, 600_000.0),
            1.0,
            rounds,
            &["wearout", "recurring-internal", "cohost-correlation"],
            61,
        ),
        pattern_signature(
            "massive transient (Fig. 8 col 2)",
            spec.clone(),
            vec![FaultSpec {
                id: 1,
                kind: FaultKind::EmiBurst {
                    rate_per_hour: 3_000.0,
                    duration_ms: 10.0,
                    center: Position { x: 0.2, y: 0.1 },
                    radius_m: 1.0,
                },
                target: FruRef::Component(NodeId(0)),
                onset: SimTime::ZERO,
            }],
            10.0,
            rounds / 2,
            &["massive-transient"],
            62,
        ),
        pattern_signature(
            "connector fault (Fig. 8 col 3)",
            spec,
            campaign::connector_campaign(NodeId(2), 3_000.0),
            10.0,
            rounds / 2,
            &["connector"],
            63,
        ),
    ];
    E6Patterns { signatures }
}

impl E6Patterns {
    /// Text rendering as the Fig. 8 table, measured.
    pub fn render(&self) -> String {
        let mut s = String::from("E6 — fault patterns in time/space/value (Fig. 8), measured\n\n");
        let _ = writeln!(
            s,
            "  {:<34}{:>12}{:>8}{:>10}{:>12}{:>22}{:>10}",
            "pattern", "freq-trend", "#comps", "crc-frac", "dev-trend", "dominant ONA", "detect"
        );
        for sig in &self.signatures {
            let _ = writeln!(
                s,
                "  {:<34}{:>12.2}{:>8}{:>10.2}{:>12.4}{:>22}{:>9.0}%",
                sig.label,
                sig.frequency_trend,
                sig.components_affected,
                sig.corruption_fraction,
                sig.deviation_trend,
                sig.dominant_pattern,
                sig.detection_rate * 100.0
            );
        }
        s.push_str(
            "\n  expected shapes: wearout → rising frequency, 1 component, rising deviation;\n   \
             massive transient → flat trend, ≥2 close components, corruption-dominant;\n   \
             connector → flat trend, 1 component, omission-dominant.\n",
        );
        s
    }
}

// ===========================================================================
// E7 — Figure 9: LRU assessment trajectories.
// ===========================================================================

/// The two assessment trajectories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E7Trust {
    /// Trajectory A: degrading FRU, (seconds, trust).
    pub trajectory_a: Vec<(f64, f64)>,
    /// Trajectory B: healthy FRU under external disturbances.
    pub trajectory_b: Vec<(f64, f64)>,
}

/// Runs E7.
pub fn e7_trust(effort: Effort) -> E7Trust {
    let mut faults = campaign::wearout_campaign(NodeId(1), 100.0, 300_000.0);
    faults.push(FaultSpec {
        id: 99,
        kind: FaultKind::EmiBurst {
            rate_per_hour: 2_000.0,
            duration_ms: 10.0,
            center: Position { x: 0.2, y: 0.1 },
            radius_m: 1.0,
        },
        target: FruRef::Component(NodeId(0)),
        onset: SimTime::ZERO,
    });
    let c = Campaign::reference(faults, 1.0, effort.scale(20_000), 11);
    let series =
        trust_trajectories(&c, &[FruRef::Component(NodeId(1)), FruRef::Component(NodeId(0))], 250)
            .expect("valid spec");
    E7Trust { trajectory_a: series[0].1.clone(), trajectory_b: series[1].1.clone() }
}

impl E7Trust {
    /// Text rendering.
    pub fn render(&self) -> String {
        fn line(series: &[(f64, f64)]) -> String {
            const L: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
            series.iter().map(|&(_, t)| L[((t * 7.0).round() as usize).min(7)]).collect()
        }
        let mut s = String::from("E7 — LRU assessment trajectories (Fig. 9)\n\n");
        let a_end = self.trajectory_a.last().map(|x| x.1).unwrap_or(1.0);
        let b_end = self.trajectory_b.last().map(|x| x.1).unwrap_or(1.0);
        let _ = writeln!(s, "  A (wearing out, final {:.3}):", a_end);
        let _ = writeln!(s, "    {}", line(&self.trajectory_a));
        let _ = writeln!(s, "  B (healthy + EMI, final {:.3}):", b_end);
        let _ = writeln!(s, "    {}", line(&self.trajectory_b));
        s
    }
}

// ===========================================================================
// E8 — Figure 10: judgment in time, value and space.
// ===========================================================================

/// Outcome of the Fig. 10 discrimination scenarios.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E8Judgment {
    /// Scenario A: job-inherent fault at S2 — verdict for S2 and for its
    /// host component.
    pub job_fault_verdict: (String, String),
    /// Scenario A: DASs containing symptomatic jobs (must be only DAS S).
    pub job_fault_dases: Vec<String>,
    /// Scenario B: component fault at component 1 — verdict for the
    /// component.
    pub comp_fault_verdict: String,
    /// Scenario B: symptomatic jobs per DAS on component 1.
    pub comp_fault_dases: Vec<String>,
    /// Scenario B: whether the cohost-correlation pattern fired.
    pub cohost_fired: bool,
}

/// Runs E8.
pub fn e8_judgment(effort: Effort) -> E8Judgment {
    let spec = fig10::reference_spec();
    // --- scenario A: stuck replica sensor ---------------------------------
    let ca = Campaign::reference(
        campaign::sensor_campaign(fig10::jobs::S2, FaultKind::SensorStuck { value: 50.0 }),
        1.0,
        effort.scale(4_000),
        21,
    );
    let mut sym_dases_a: std::collections::BTreeSet<String> = Default::default();
    let mut env = FaultEnvironment::for_cluster(
        ca.faults.clone(),
        &ca.spec,
        ca.accel,
        SeedSource::new(ca.seed).child(1),
    );
    let mut sim = ClusterSim::new(ca.spec.clone(), ca.seed).expect("valid");
    let mut det = SymptomDetectors::new(&sim);
    let mut batch = Vec::new();
    for _ in 0..ca.rounds * 4 {
        let rec = sim.step_slot(&mut env);
        det.detect(&sim, &rec, &mut batch);
    }
    for s in &batch {
        if let Subject::Job(j) = s.subject {
            if let Some(job) = spec.jobs.iter().find(|x| x.id == j) {
                sym_dases_a.insert(format!("{}", job.das));
            }
        }
    }
    let out_a = run_campaign(&ca).expect("valid");
    let s2_verdict = out_a
        .report
        .verdict_of(FruRef::Job(fig10::jobs::S2))
        .and_then(|v| v.class)
        .map(|c| c.to_string())
        .unwrap_or_else(|| "(undecided)".into());
    let host_verdict = out_a
        .report
        .verdict_of(FruRef::Component(NodeId(1)))
        .and_then(|v| v.class)
        .map(|c| c.to_string())
        .unwrap_or_else(|| "(no verdict)".into());

    // --- scenario B: internal fault at the shared component ---------------
    let cb = Campaign::reference(
        vec![FaultSpec {
            id: 1,
            kind: FaultKind::CapacitorAging { bias_per_hour: 40_000.0 },
            target: FruRef::Component(NodeId(1)),
            onset: SimTime::ZERO,
        }],
        1.0,
        effort.scale(15_000),
        22,
    );
    let out_b = run_campaign(&cb).expect("valid");
    let comp_verdict = out_b
        .report
        .verdict_of(FruRef::Component(NodeId(1)))
        .and_then(|v| v.class)
        .map(|c| c.to_string())
        .unwrap_or_else(|| "(undecided)".into());
    let cohost_fired = out_b
        .report
        .verdict_of(FruRef::Component(NodeId(1)))
        .map(|v| v.patterns.contains_key("cohost-correlation"))
        .unwrap_or(false);
    let comp_dases: Vec<String> = spec
        .jobs
        .iter()
        .filter(|j| j.host == NodeId(1))
        .map(|j| format!("{} hosts {} ({})", j.host, j.name, j.das))
        .collect();

    E8Judgment {
        job_fault_verdict: (s2_verdict, host_verdict),
        job_fault_dases: sym_dases_a.into_iter().collect(),
        comp_fault_verdict: comp_verdict,
        comp_fault_dases: comp_dases,
        cohost_fired,
    }
}

impl E8Judgment {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = String::from("E8 — three-dimensional judgment (Fig. 10)\n\n");
        let _ = writeln!(s, "  scenario A (stuck sensor at S2):");
        let _ = writeln!(s, "    S2 verdict:        {}", self.job_fault_verdict.0);
        let _ = writeln!(s, "    host N1 verdict:   {}", self.job_fault_verdict.1);
        let _ = writeln!(
            s,
            "    symptomatic DASs:  {:?} (containment: fault stays in DAS S)",
            self.job_fault_dases
        );
        let _ = writeln!(s, "\n  scenario B (internal fault at shared component 1):");
        let _ = writeln!(s, "    component verdict: {}", self.comp_fault_verdict);
        let _ = writeln!(s, "    cohost ONA fired:  {}", self.cohost_fired);
        for d in &self.comp_fault_dases {
            let _ = writeln!(s, "    {d}");
        }
        s
    }
}

// ===========================================================================
// E9 — Figure 11: maintenance actions and the NFF economics.
// ===========================================================================

/// The DECOS-vs-OBD comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E9Actions {
    /// Vehicles simulated.
    pub vehicles: u64,
    /// Integrated-diagnosis score.
    pub decos: decos::diagnosis::ActionScore,
    /// Baseline score.
    pub obd: decos::diagnosis::ActionScore,
    /// Per-class action-correctness of the integrated diagnosis.
    pub per_class_correct: BTreeMap<String, (u64, u64)>,
}

/// Runs E9.
pub fn e9_actions(effort: Effort) -> E9Actions {
    let cfg = FleetConfig {
        vehicles: effort.scale(200),
        rounds: effort.scale(4_000),
        accel: 10.0,
        seed: 808,
    };
    let out = run_fleet(&fig10::reference_spec(), cfg).expect("reference spec analyzes clean");
    // Exact per-class aggregates from the streaming accumulator — E9 no
    // longer depends on which vehicles the retention policy sampled.
    let mut per_class: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (class, &cases) in &out.class_counts {
        let correct = out.class_correct.get(class).copied().unwrap_or(0);
        per_class.insert(class.clone(), (cases, correct));
    }
    E9Actions {
        vehicles: cfg.vehicles,
        decos: out.decos,
        obd: out.obd,
        per_class_correct: per_class,
    }
}

impl E9Actions {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "E9 — maintenance actions & NFF economics over {} vehicles (Fig. 11)\n\n",
            self.vehicles
        );
        let _ = writeln!(s, "  {:<28}{:>12}{:>12}", "", "integrated", "OBD");
        let _ =
            writeln!(s, "  {:<28}{:>12}{:>12}", "removals", self.decos.removals, self.obd.removals);
        let _ = writeln!(
            s,
            "  {:<28}{:>12}{:>12}",
            "NFF removals", self.decos.nff_removals, self.obd.nff_removals
        );
        let _ = writeln!(
            s,
            "  {:<28}{:>11.1}%{:>11.1}%",
            "NFF ratio",
            self.decos.nff_ratio() * 100.0,
            self.obd.nff_ratio() * 100.0
        );
        let _ = writeln!(
            s,
            "  {:<28}{:>11.0}${:>11.0}$",
            "wasted cost ($800/removal)",
            self.decos.wasted_cost_usd(),
            self.obd.wasted_cost_usd()
        );
        let _ = writeln!(
            s,
            "  {:<28}{:>12}{:>12}",
            "missed repairs", self.decos.missed_removals, self.obd.missed_removals
        );
        let _ = writeln!(
            s,
            "  {:<28}{:>12}{:>12}",
            "correct Fig.11 actions", self.decos.correct_actions, self.obd.correct_actions
        );
        let _ = writeln!(s, "\n  per-class correct actions (integrated):");
        for (c, (n, ok)) in &self.per_class_correct {
            let _ = writeln!(s, "    {c:<26} {ok}/{n}");
        }
        s
    }
}

// ===========================================================================
// E10 — §III-E: assumptions, measured.
// ===========================================================================

/// Paper-stated vs. measured quantities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E10Assumptions {
    /// Rows: (assumption, paper value, measured value).
    pub rows: Vec<(String, String, String)>,
}

/// Runs E10.
pub fn e10_assumptions(effort: Effort) -> E10Assumptions {
    let mut rows = Vec::new();
    // Rate anchors.
    rows.push((
        "permanent HW rate".into(),
        "100 FIT (≈1000 y MTTF)".into(),
        format!("{:.0} y MTTF", decos::reliability::PERMANENT_HW_FIT.mttf_years()),
    ));
    rows.push((
        "transient HW rate".into(),
        "100 000 FIT (≈1 y MTTF)".into(),
        format!("{:.2} y MTTF", decos::reliability::TRANSIENT_HW_FIT.mttf_years()),
    ));

    // Transient duration.
    let spec = fig10::reference_spec();
    let faults = vec![FaultSpec {
        id: 1,
        kind: FaultKind::PcbCrack {
            base_rate_per_hour: 50_000.0,
            growth_per_hour: 0.0,
            outage_ms: 30.0,
        },
        target: FruRef::Component(NodeId(1)),
        onset: SimTime::ZERO,
    }];
    let mut env = FaultEnvironment::for_cluster(faults, &spec, 1.0, SeedSource::new(4));
    let mut sim = ClusterSim::new(spec.clone(), 4).expect("valid");
    for _ in 0..effort.scale(20_000) * 4 {
        sim.step_slot(&mut env);
    }
    let mean_ms = {
        let ws = &env.log().windows;
        ws.iter().map(|w| w.until.saturating_since(w.from).as_secs_f64() * 1e3).sum::<f64>()
            / ws.len().max(1) as f64
    };
    rows.push((
        "transient duration".into(),
        "tens of ms (<50 ms [34])".into(),
        format!("{mean_ms:.1} ms mean"),
    ));

    // EMI burst duration.
    let faults = vec![FaultSpec {
        id: 1,
        kind: FaultKind::EmiBurst {
            rate_per_hour: 50_000.0,
            duration_ms: 10.0,
            center: Position { x: 0.2, y: 0.1 },
            radius_m: 1.0,
        },
        target: FruRef::Component(NodeId(0)),
        onset: SimTime::ZERO,
    }];
    let mut env = FaultEnvironment::for_cluster(faults, &spec, 1.0, SeedSource::new(5));
    let mut sim = ClusterSim::new(spec.clone(), 5).expect("valid");
    for _ in 0..effort.scale(20_000) * 4 {
        sim.step_slot(&mut env);
    }
    let emi_ms = {
        let ws = &env.log().windows;
        ws.iter().map(|w| w.until.saturating_since(w.from).as_secs_f64() * 1e3).sum::<f64>()
            / ws.len().max(1) as f64
    };
    rows.push((
        "EMI burst duration".into(),
        "~10 ms (ISO 7637)".into(),
        format!("{emi_ms:.1} ms mean"),
    ));

    // Detection of slot-length transients: reuse the assumptions test logic.
    rows.push((
        "detection bound".into(),
        "transients > 1 TDMA slot detected".into(),
        "validated (tests/assumptions.rs)".into(),
    ));

    // 500 ms OBD threshold.
    rows.push((
        "OBD recording threshold".into(),
        "≥ 500 ms recorded; shorter undetected".into(),
        "modelled in ObdParams::default".into(),
    ));

    // Useful-life field rate.
    let model = BathtubModel::automotive_ecu();
    let seeds = SeedSource::new(7);
    let n = effort.scale(200_000);
    let lifetimes: Vec<f64> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = seeds.stream("fleet10", i);
            model.sample_failure_hours(&mut rng).hours
        })
        .collect();
    let rates = fleet_failure_rates(&lifetimes, 10);
    let plateau: f64 = rates.per_million_per_year[2..6].iter().sum::<f64>() / 4.0;
    rows.push((
        "useful-life field rate".into(),
        "~50 per 10⁶ ECUs per year [16]".into(),
        format!("{plateau:.0} per 10⁶ per year"),
    ));

    // 20-80 rule.
    let mut rng = SeedSource::new(8).stream("modules", 0);
    let counts: Vec<u64> = (0..100).map(|i| rng.poisson(if i < 20 { 40.0 } else { 2.5 })).collect();
    let conc = decos::reliability::concentration(&counts);
    rows.push((
        "software fault distribution".into(),
        "20 % of modules → 80 % of failures [21]".into(),
        format!("top-20 % share = {:.0} %", conc.top20_share * 100.0),
    ));

    E10Assumptions { rows }
}

impl E10Assumptions {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = String::from("E10 — assumptions behind the fault model (§III-E), measured\n\n");
        let _ = writeln!(s, "  {:<28}{:<40}measured", "assumption", "paper");
        for (a, p, m) in &self.rows {
            let _ = writeln!(s, "  {a:<28}{p:<40}{m}");
        }
        s
    }
}

// ===========================================================================
// E12 — ablations of the design choices DESIGN.md calls out.
// ===========================================================================

/// One ablation configuration's fleet outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Classification accuracy.
    pub accuracy: f64,
    /// NFF ratio of the integrated diagnosis under this configuration.
    pub nff_ratio: f64,
    /// Correct Fig. 11 actions.
    pub correct_actions: u64,
    /// Vehicles.
    pub vehicles: u64,
}

/// The E12 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E12Ablation {
    /// One row per configuration.
    pub rows: Vec<AblationRow>,
}

/// Runs E12: full engine vs. engine without the spatial ONA, without the
/// co-host correlation, and without α-count memory.
pub fn e12_ablation(effort: Effort) -> E12Ablation {
    use decos::diagnosis::EngineParams;
    use decos::reliability::AlphaParams;
    let cfg = FleetConfig {
        vehicles: effort.scale(120),
        rounds: effort.scale(4_000),
        accel: 10.0,
        seed: 1212,
    };
    let spec = fig10::reference_spec();

    let mut configs: Vec<(String, EngineParams)> = Vec::new();
    configs.push(("full".into(), EngineParams::default()));
    let mut p = EngineParams::default();
    p.ona.enable_spatial = false;
    configs.push(("no-spatial-ona".into(), p));
    let mut p = EngineParams::default();
    p.ona.enable_cohost = false;
    configs.push(("no-cohost-correlation".into(), p));
    let mut p = EngineParams::default();
    p.ona.alpha = AlphaParams { decay: 0.0, threshold: p.ona.alpha.threshold };
    configs.push(("no-alpha-memory".into(), p));

    let rows = configs
        .into_iter()
        .map(|(label, params)| {
            let out = decos::fleet::run_fleet_with_params(&spec, cfg, params)
                .expect("ablation spec analyzes clean");
            AblationRow {
                config: label,
                accuracy: out.confusion.accuracy(),
                nff_ratio: out.decos.nff_ratio(),
                correct_actions: out.decos.correct_actions,
                vehicles: cfg.vehicles,
            }
        })
        .collect();
    E12Ablation { rows }
}

impl E12Ablation {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = String::from("E12 — design-choice ablations (fleet classification)\n\n");
        let _ = writeln!(
            s,
            "  {:<26}{:>10}{:>11}{:>18}",
            "configuration", "accuracy", "NFF ratio", "correct actions"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "  {:<26}{:>9.1}%{:>10.1}%{:>12}/{}",
                r.config,
                r.accuracy * 100.0,
                r.nff_ratio * 100.0,
                r.correct_actions,
                r.vehicles
            );
        }
        s
    }
}

// ===========================================================================
// E13 — §V closed maintenance loop: repeat visits until resolution.
// ===========================================================================

/// Aggregate service-loop statistics for one strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Strategy label.
    pub strategy: String,
    /// Vehicles whose defect was actually eliminated within the budget.
    pub resolved: u64,
    /// Mean workshop visits over resolved vehicles.
    pub mean_visits: f64,
    /// Mean total cost per vehicle (resolved or not).
    pub mean_cost_usd: f64,
    /// Total no-fault-found removals across the fleet.
    pub nff_removals: u64,
}

/// The E13 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E13ServiceLoop {
    /// Vehicles per strategy.
    pub vehicles: u64,
    /// Integrated vs OBD statistics.
    pub rows: Vec<ServiceStats>,
}

/// Runs E13: each vehicle gets one sampled fault and is driven through the
/// closed maintenance loop (drive → diagnose → act → drive …) under both
/// strategies.
pub fn e13_service_loop(effort: Effort) -> E13ServiceLoop {
    use decos::workshop::{service_loop, CostModel, Strategy};
    let vehicles = effort.scale(60);
    let rounds = effort.scale(4_000);
    let spec = fig10::reference_spec();
    let seeds = SeedSource::new(1313);

    let run_strategy = |strategy: Strategy, label: &str| -> ServiceStats {
        let histories: Vec<decos::workshop::ServiceHistory> = (0..vehicles)
            .into_par_iter()
            .map(|i| {
                let (vspec, faults) = campaign::sample_mixed_fault(&spec, seeds, i);
                service_loop(
                    vspec,
                    faults,
                    strategy,
                    CostModel::default(),
                    10.0,
                    rounds,
                    seeds.child(i).master(),
                    5,
                )
                .expect("valid spec")
            })
            .collect();
        let resolved: Vec<&decos::workshop::ServiceHistory> =
            histories.iter().filter(|h| h.resolved).collect();
        // Mean visits among vehicles that actually needed the workshop.
        let serviced: Vec<usize> =
            resolved.iter().filter(|h| !h.visits.is_empty()).map(|h| h.visits.len()).collect();
        let mean_visits = if serviced.is_empty() {
            f64::NAN
        } else {
            serviced.iter().sum::<usize>() as f64 / serviced.len() as f64
        };
        ServiceStats {
            strategy: label.into(),
            resolved: resolved.len() as u64,
            mean_visits,
            mean_cost_usd: histories.iter().map(|h| h.total_cost_usd).sum::<f64>()
                / vehicles as f64,
            nff_removals: histories.iter().map(|h| h.nff_removals).sum(),
        }
    };

    E13ServiceLoop {
        vehicles,
        rows: vec![
            run_strategy(Strategy::Integrated, "integrated"),
            run_strategy(Strategy::Obd, "obd"),
        ],
    }
}

impl E13ServiceLoop {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "E13 — closed maintenance loop over {} vehicles (§V, max 5 visits)\n\n",
            self.vehicles
        );
        let _ = writeln!(
            s,
            "  {:<14}{:>10}{:>14}{:>14}{:>14}",
            "strategy", "resolved", "visits/fix", "mean cost $", "NFF removals"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "  {:<14}{:>7}/{:<3}{:>13.2}{:>14.0}{:>14}",
                r.strategy,
                r.resolved,
                self.vehicles,
                r.mean_visits,
                r.mean_cost_usd,
                r.nff_removals
            );
        }
        s.push_str(
            "\n  the paper's question — does the replacement end the malfunction? —\n  \
             answered per strategy: integrated resolves in ~1 visit without waste;\n  \
             the baseline swaps working ECUs and the complaint returns.\n",
        );
        s
    }
}

// ===========================================================================
// E11 — §V-C: α-count discrimination ROC.
// ===========================================================================

/// One ROC point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RocPoint {
    /// Declaration threshold swept.
    pub threshold: f64,
    /// True-positive rate (internal declared recurring).
    pub tpr: f64,
    /// False-positive rate (external declared recurring).
    pub fpr: f64,
}

/// The E11 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E11Alpha {
    /// ROC of the α-count (decay 0.95).
    pub alpha_roc: Vec<RocPoint>,
    /// ROC of naive counting (decay 0 ≙ consecutive-failure counter).
    pub naive_roc: Vec<RocPoint>,
    /// Area under the α-count ROC.
    pub alpha_auc: f64,
    /// Area under the naive ROC.
    pub naive_auc: f64,
    /// Samples per class.
    pub samples: u64,
}

/// Runs E11: internal faults recur at ~10× the external rate (§V-C);
/// sweep the declaration threshold and measure discrimination.
pub fn e11_alpha(effort: Effort) -> E11Alpha {
    let samples = effort.scale(400);
    let windows = 400usize;
    // A deliberately hard setting: internal faults recur only 3× more often
    // than environmental transients (§V-C's separation is usually larger);
    // this is where the memory of the α-count pays off over a naive
    // consecutive-failure counter.
    let p_ext = 0.06;
    let p_int = 0.18;

    let run_max_alpha = |decay: f64, p: f64, seed: u64| -> f64 {
        let mut rng = SeedSource::new(seed).stream("e11", 0);
        let mut a = AlphaCount::new(AlphaParams { decay, threshold: f64::INFINITY });
        let mut max = 0.0f64;
        for _ in 0..windows {
            a.observe(rng.chance(p));
            max = max.max(a.alpha());
        }
        max
    };

    let roc = |decay: f64| -> Vec<RocPoint> {
        let ext: Vec<f64> = (0..samples).map(|i| run_max_alpha(decay, p_ext, 1_000 + i)).collect();
        let int: Vec<f64> = (0..samples).map(|i| run_max_alpha(decay, p_int, 2_000 + i)).collect();
        (0..40)
            .map(|k| {
                let threshold = k as f64 * 0.5;
                let tpr = int.iter().filter(|&&x| x >= threshold).count() as f64 / samples as f64;
                let fpr = ext.iter().filter(|&&x| x >= threshold).count() as f64 / samples as f64;
                RocPoint { threshold, tpr, fpr }
            })
            .collect()
    };

    let auc = |points: &[RocPoint]| -> f64 {
        // Trapezoid over (fpr, tpr), sorted by fpr.
        let mut pts: Vec<(f64, f64)> = points.iter().map(|p| (p.fpr, p.tpr)).collect();
        pts.push((0.0, 0.0));
        pts.push((1.0, 1.0));
        pts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        pts.windows(2).map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0).sum()
    };

    let alpha_roc = roc(0.95);
    let naive_roc = roc(0.0);
    let alpha_auc = auc(&alpha_roc);
    let naive_auc = auc(&naive_roc);
    E11Alpha { alpha_roc, naive_roc, alpha_auc, naive_auc, samples }
}

impl E11Alpha {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "E11 — α-count internal/external discrimination ({} samples/class)\n\n",
            self.samples
        );
        let _ = writeln!(
            s,
            "  {:<12}{:>8}{:>8}    {:<12}{:>8}{:>8}",
            "α-count", "tpr", "fpr", "naive", "tpr", "fpr"
        );
        for (a, n) in self.alpha_roc.iter().zip(&self.naive_roc).step_by(4) {
            let _ = writeln!(
                s,
                "  thr {:<8.1}{:>7.2}{:>8.2}    thr {:<8.1}{:>7.2}{:>8.2}",
                a.threshold, a.tpr, a.fpr, n.threshold, n.tpr, n.fpr
            );
        }
        let _ =
            writeln!(s, "\n  AUC: α-count = {:.3}, naive = {:.3}", self.alpha_auc, self.naive_auc);
        s
    }
}

// ===========================================================================
// E14 — robustness: the diagnostic path under its own fault model.
// ===========================================================================

/// One sweep point of the degradation experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationPoint {
    /// Injected symptom-frame loss probability.
    pub loss: f64,
    /// Injected symptom-frame corruption probability.
    pub corrupt: f64,
    /// Mean delivery quality over informative rounds, as reported.
    pub delivery_quality: f64,
    /// Symptom frames that survived transit and screening.
    pub delivered: u64,
    /// Symptom frames offered to the virtual diagnostic network.
    pub offered: u64,
    /// Whether the report flagged the diagnostic path degraded.
    pub degraded: bool,
    /// The true FRU still carries its true fault class in the verdicts.
    pub truth_found: bool,
    /// Replacement actions recommended against healthy FRUs.
    pub false_replacements: u64,
    /// Any action recommended at all.
    pub actions: u64,
}

/// The E14 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E14Degradation {
    /// Ground truth of every sweep point.
    pub truth: String,
    /// Loss sweep (corruption fixed at 0).
    pub loss_sweep: Vec<DegradationPoint>,
    /// Corruption sweep (loss fixed at 0).
    pub corruption_sweep: Vec<DegradationPoint>,
    /// The bottom-line soundness claim: with the symptom stream fully
    /// severed, the engine flags the degradation and recommends nothing.
    pub sound_at_total_loss: bool,
    /// Flight-recorder dump of the total-loss endpoint, written because
    /// that endpoint is anomalous by construction (degraded path).
    pub flightrec_dump: Option<String>,
}

/// Runs E14: a fixed connector fault plus an increasingly hostile
/// diagnostic path. The architecture must degrade *gracefully*: verdicts
/// may starve, but the report must say so (`degraded`), and no healthy
/// FRU may be condemned on a distorted symptom stream — absence of
/// evidence is never treated as evidence of health, and a silent channel
/// must not be mistaken for a silent fault.
pub fn e14_diag_degradation(effort: Effort) -> E14Degradation {
    let rounds = effort.scale(8_000);
    let truth_fru = FruRef::Component(NodeId(2));
    let truth_class = FaultClass::ComponentBorderline;
    let levels = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];

    let run_point = |loss: f64, corrupt: f64, seed: u64| -> DegradationPoint {
        let mut faults = campaign::connector_campaign(NodeId(2), 2000.0);
        faults.extend(campaign::diag_degradation_campaign(loss, corrupt, 0));
        let c = Campaign::reference(faults, 10.0, rounds, seed);
        let out = run_campaign(&c).expect("degradation campaign analyzes clean");
        let truth_found =
            out.report.verdict_of(truth_fru).is_some_and(|v| v.class == Some(truth_class));
        let false_replacements = out
            .report
            .actions()
            .iter()
            .filter(|(fru, a)| *a == MaintenanceAction::ReplaceComponent && *fru != truth_fru)
            .count() as u64;
        DegradationPoint {
            loss,
            corrupt,
            delivery_quality: out.report.delivery_quality,
            delivered: out.dissemination.delivered,
            offered: out.dissemination.offered,
            degraded: out.report.degraded,
            truth_found,
            false_replacements,
            actions: out.report.actions().len() as u64,
        }
    };

    let loss_sweep: Vec<DegradationPoint> = (0..levels.len())
        .into_par_iter()
        .map(|i| run_point(levels[i], 0.0, 1_400 + i as u64))
        .collect();
    let corruption_sweep: Vec<DegradationPoint> = (0..levels.len())
        .into_par_iter()
        .map(|i| run_point(0.0, levels[i], 1_500 + i as u64))
        .collect();

    // Soundness under a fully severed path: both the total-loss and the
    // total-corruption endpoint must flag degradation, recommend nothing,
    // and report near-zero delivery quality.
    let sound = |p: &DegradationPoint| {
        p.degraded && p.actions == 0 && p.false_replacements == 0 && p.delivery_quality < 0.1
    };
    let sound_at_total_loss = sound(loss_sweep.last().expect("non-empty sweep"))
        && sound(corruption_sweep.last().expect("non-empty sweep"));

    // Black-box flight recorder over the total-loss endpoint: rerun it with
    // the recorder armed and keep the tape under the on-anomaly policy. A
    // fully severed path flags `degraded`, so the tape is always kept and
    // `repro trace-report e14_flightrec.jsonl` can replay how the symptom
    // stream starved.
    let flightrec_dump = {
        let mut faults = campaign::connector_campaign(NodeId(2), 2000.0);
        faults.extend(campaign::diag_degradation_campaign(1.0, 0.0, 0));
        let c = Campaign::reference(faults, 10.0, rounds, 1_400 + (levels.len() - 1) as u64);
        let opts = RunOptions { telemetry: true, flightrec: true, ..Default::default() };
        let out = decos::runner::run_campaign_opts(
            &c,
            EngineParams::default(),
            opts,
            &mut [],
            |_, _, _| {},
        )
        .expect("degradation campaign analyzes clean");
        let path = "e14_flightrec.jsonl";
        match crate::flightdump::dump_on_anomaly(&out, path) {
            Ok(true) => Some(path.to_string()),
            Ok(false) => None,
            Err(e) => {
                eprintln!("warning: cannot write {path}: {e}");
                None
            }
        }
    };

    E14Degradation {
        truth: "connector fault at component 2 (expected action: inspect-connector)".into(),
        loss_sweep,
        corruption_sweep,
        sound_at_total_loss,
        flightrec_dump,
    }
}

impl E14Degradation {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = String::from("E14 — diagnostic-path degradation sweep (robustness)\n\n");
        let _ = writeln!(s, "  truth: {}\n", self.truth);
        let table = |s: &mut String, label: &str, points: &[DegradationPoint]| {
            let _ = writeln!(
                *s,
                "  {:<18}{:>9}{:>18}{:>10}{:>7}{:>15}",
                label, "quality", "delivered/offered", "degraded", "truth", "false-replace"
            );
            for p in points {
                let knob = if label.starts_with("loss") { p.loss } else { p.corrupt };
                let _ = writeln!(
                    *s,
                    "  {:<18}{:>9.3}{:>11}/{:<7}{:>9}{:>7}{:>14}",
                    format!("p = {knob:.2}"),
                    p.delivery_quality,
                    p.delivered,
                    p.offered,
                    if p.degraded { "yes" } else { "no" },
                    if p.truth_found { "yes" } else { "no" },
                    p.false_replacements
                );
            }
            s.push('\n');
        };
        table(&mut s, "loss sweep", &self.loss_sweep);
        table(&mut s, "corruption sweep", &self.corruption_sweep);
        if let Some(path) = &self.flightrec_dump {
            let _ = writeln!(s, "  flight-recorder dump (total-loss endpoint): {path}");
        }
        let _ = writeln!(
            s,
            "  sound-under-total-loss: {}",
            if self.sound_at_total_loss { "PASS" } else { "FAIL" }
        );
        s
    }
}
