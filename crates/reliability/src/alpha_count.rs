//! The α-count mechanism of Bondavalli et al. \[33\].
//!
//! §V-C: "for the differentiation whether transient failures are caused by
//! environmental influences or internal faults, techniques such as the
//! α-count mechanisms can be utilized". The heuristic accumulates evidence
//! over judgement intervals:
//!
//! * interval with a failure:   `α ← α + 1`
//! * interval without failure:  `α ← α · δ`   (decay, `0 ≤ δ < 1`)
//!
//! A unit whose α crosses the threshold `α_T` is declared affected by a
//! *recurring* (internal, repair-requiring) fault; isolated environmental
//! transients decay away before reaching the threshold. The experiment E11
//! sweeps `(δ, α_T)` and measures the discrimination ROC.

use serde::{Deserialize, Serialize};

/// Parameters of an α-count instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaParams {
    /// Decay factor applied on failure-free intervals, `0 ≤ δ < 1`.
    pub decay: f64,
    /// Declaration threshold `α_T`.
    pub threshold: f64,
}

impl Default for AlphaParams {
    fn default() -> Self {
        // Values in the range studied by [33]: slow decay, threshold a few
        // failures above baseline.
        AlphaParams { decay: 0.9, threshold: 3.0 }
    }
}

/// Verdict of the α-count heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlphaVerdict {
    /// Evidence below threshold: treat failures seen so far as benign
    /// transients.
    Benign,
    /// Threshold crossed: the failure pattern indicates a recurring
    /// (internal) fault.
    Recurring,
}

/// A running α-count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaCount {
    params: AlphaParams,
    alpha: f64,
    intervals: u64,
    failures: u64,
    /// Latched once the threshold is crossed (declaration is sticky, as in
    /// the original formulation: the unit is handed to fault treatment).
    declared: bool,
}

impl AlphaCount {
    /// Creates a zeroed counter.
    pub fn new(params: AlphaParams) -> Self {
        assert!((0.0..1.0).contains(&params.decay), "decay must be in [0,1)");
        assert!(params.threshold > 0.0);
        AlphaCount { params, alpha: 0.0, intervals: 0, failures: 0, declared: false }
    }

    /// Current α value.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total judgement intervals observed.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Total failing intervals observed.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Whether the threshold has (ever) been crossed.
    pub fn is_declared(&self) -> bool {
        self.declared
    }

    /// Feeds one judgement interval; returns the current verdict.
    pub fn observe(&mut self, failed: bool) -> AlphaVerdict {
        self.intervals += 1;
        if failed {
            self.failures += 1;
            self.alpha += 1.0;
        } else {
            self.alpha *= self.params.decay;
        }
        if self.alpha >= self.params.threshold {
            self.declared = true;
        }
        self.verdict()
    }

    /// The current verdict.
    pub fn verdict(&self) -> AlphaVerdict {
        if self.declared {
            AlphaVerdict::Recurring
        } else {
            AlphaVerdict::Benign
        }
    }

    /// Resets the evidence (after repair/replacement of the FRU).
    pub fn reset(&mut self) {
        self.alpha = 0.0;
        self.declared = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ac(decay: f64, threshold: f64) -> AlphaCount {
        AlphaCount::new(AlphaParams { decay, threshold })
    }

    #[test]
    fn isolated_transients_stay_benign() {
        let mut a = ac(0.5, 3.0);
        // One failure every 10 intervals: decays to ~0 between failures.
        for i in 0..200 {
            let v = a.observe(i % 10 == 0);
            assert_eq!(v, AlphaVerdict::Benign, "interval {i}, alpha {}", a.alpha());
        }
        assert!(!a.is_declared());
    }

    #[test]
    fn recurring_failures_declare() {
        let mut a = ac(0.9, 3.0);
        // Failures every other interval accumulate past the threshold.
        let mut declared_at = None;
        for i in 0..50 {
            if a.observe(i % 2 == 0) == AlphaVerdict::Recurring {
                declared_at = Some(i);
                break;
            }
        }
        assert!(declared_at.is_some(), "burst must be declared");
        assert!(declared_at.unwrap() < 20);
    }

    #[test]
    fn declaration_is_sticky() {
        let mut a = ac(0.5, 2.0);
        a.observe(true);
        a.observe(true);
        assert_eq!(a.verdict(), AlphaVerdict::Recurring);
        for _ in 0..100 {
            a.observe(false);
        }
        assert_eq!(a.verdict(), AlphaVerdict::Recurring, "verdict must latch");
        assert!(a.alpha() < 0.01, "alpha itself decays");
    }

    #[test]
    fn reset_clears_declaration() {
        let mut a = ac(0.5, 2.0);
        a.observe(true);
        a.observe(true);
        assert!(a.is_declared());
        a.reset();
        assert_eq!(a.verdict(), AlphaVerdict::Benign);
        assert_eq!(a.alpha(), 0.0);
        // Counters persist (lifetime bookkeeping).
        assert_eq!(a.failures(), 2);
    }

    #[test]
    fn zero_decay_needs_consecutive_failures() {
        let mut a = ac(0.0, 2.0);
        a.observe(true);
        a.observe(false); // wipes alpha entirely
        a.observe(true);
        assert_eq!(a.verdict(), AlphaVerdict::Benign);
        a.observe(true);
        assert_eq!(a.verdict(), AlphaVerdict::Recurring);
    }

    #[test]
    fn counters_track() {
        let mut a = ac(0.9, 100.0);
        for i in 0..10 {
            a.observe(i < 3);
        }
        assert_eq!(a.intervals(), 10);
        assert_eq!(a.failures(), 3);
    }

    #[test]
    #[should_panic]
    fn invalid_decay_rejected() {
        ac(1.0, 3.0);
    }
}
