//! FIT rates — the unit of the paper's failure-rate assumptions.
//!
//! One FIT is one failure per 10⁹ device-hours. §III-E quantifies the
//! maintenance-oriented fault model with:
//!
//! * permanent hardware failures: ≈ 100 FIT ("about 1000 years"),
//! * transient hardware failures: ≈ 100 000 FIT ("about 1 year"),
//! * useful-life field rate: 50 failures per 10⁶ ECUs per year \[16\].

use decos_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A failure rate in FIT (failures per 10⁹ device-hours).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct FitRate(pub f64);

/// The paper's assumed permanent hardware failure rate (§III-E).
pub const PERMANENT_HW_FIT: FitRate = FitRate(100.0);

/// The paper's assumed transient hardware failure rate (§III-E).
pub const TRANSIENT_HW_FIT: FitRate = FitRate(100_000.0);

/// Field rate reported by Pauli/Meyna \[16\]: 50 failures per 10⁶ ECUs per
/// year, expressed in FIT.
pub const USEFUL_LIFE_FIELD_FIT: FitRate = FitRate(50.0 / 1e6 * 1e9 / (365.25 * 24.0));

impl FitRate {
    /// Failure rate per device-hour.
    #[inline]
    pub fn per_hour(&self) -> f64 {
        self.0 / 1e9
    }

    /// Failure rate per device-year.
    #[inline]
    pub fn per_year(&self) -> f64 {
        self.per_hour() * 365.25 * 24.0
    }

    /// Mean time to failure, in hours (infinite for a zero rate).
    #[inline]
    pub fn mttf_hours(&self) -> f64 {
        if self.0 <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.per_hour()
        }
    }

    /// Mean time to failure, in years.
    #[inline]
    pub fn mttf_years(&self) -> f64 {
        self.mttf_hours() / (365.25 * 24.0)
    }

    /// Probability of at least one failure within `d`, under an
    /// exponential (memoryless) model: `1 − e^(−λΔt)`.
    #[inline]
    pub fn failure_probability(&self, d: SimDuration) -> f64 {
        let lt = self.per_hour() * d.as_hours_f64();
        1.0 - (-lt).exp()
    }

    /// Expected number of failures within `d` (Poisson mean).
    #[inline]
    pub fn expected_failures(&self, d: SimDuration) -> f64 {
        self.per_hour() * d.as_hours_f64()
    }

    /// Constructs a rate from a mean time between failures in hours.
    #[inline]
    pub fn from_mttf_hours(h: f64) -> FitRate {
        assert!(h > 0.0);
        FitRate(1e9 / h)
    }

    /// Scales the rate by `k` (environmental stress factor, Pecht trend).
    #[inline]
    pub fn scaled(&self, k: f64) -> FitRate {
        FitRate(self.0 * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_permanent() {
        // "100 FIT, i.e. about 1000 years".
        let y = PERMANENT_HW_FIT.mttf_years();
        assert!((y - 1141.0).abs() < 2.0, "MTTF {y} years");
        assert!(y > 1000.0);
    }

    #[test]
    fn paper_anchor_transient() {
        // "100.000 FIT, i.e. about 1 year".
        let y = TRANSIENT_HW_FIT.mttf_years();
        assert!((y - 1.141).abs() < 0.01, "MTTF {y} years");
    }

    #[test]
    fn field_rate_constant() {
        // 50 per 10⁶ per year ⇒ per-year rate of 5e-5.
        assert!((USEFUL_LIFE_FIELD_FIT.per_year() - 5e-5).abs() < 1e-12);
    }

    #[test]
    fn conversions_roundtrip() {
        let r = FitRate(1234.5);
        let back = FitRate::from_mttf_hours(r.mttf_hours());
        assert!((back.0 - r.0).abs() < 1e-6);
    }

    #[test]
    fn failure_probability_small_rate_is_linear() {
        let r = FitRate(1000.0); // 1e-6 per hour
        let p = r.failure_probability(SimDuration::from_hours(10));
        assert!((p - 1e-5).abs() < 1e-9);
        assert!((r.expected_failures(SimDuration::from_hours(10)) - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn failure_probability_saturates() {
        let r = FitRate(1e12);
        let p = r.failure_probability(SimDuration::from_hours(1000));
        assert!(p > 0.999999);
        assert!(p <= 1.0);
    }

    #[test]
    fn zero_rate() {
        let r = FitRate(0.0);
        assert_eq!(r.mttf_hours(), f64::INFINITY);
        assert_eq!(r.failure_probability(SimDuration::from_hours(100)), 0.0);
    }

    #[test]
    fn scaling() {
        assert_eq!(FitRate(100.0).scaled(2.5).0, 250.0);
    }
}
