//! The bathtub curve (Fig. 7).
//!
//! The reliability of an electronic component over its life is the
//! superposition of three competing failure processes:
//!
//! * **infant mortality** — manufacturing escapes affecting only a
//!   *subpopulation* of shipped units (\[27\]; decreasing Weibull hazard);
//! * **useful life** — a low constant rate (§III-E/\[16\]: ≈ 50 failures per
//!   10⁶ ECUs per year);
//! * **wearout** — accumulated incremental damage (\[31\]; increasing
//!   Weibull hazard with a late onset).
//!
//! [`BathtubModel::sample_failure_hours`] draws a unit's time-to-failure as
//! the minimum of the three processes (competing risks); the population
//! hazard estimated from such samples reproduces the bathtub shape —
//! experiment E5 regenerates Fig. 7 exactly this way.

use crate::dist::{Exponential, Weibull};
use decos_sim::rng::SampleExt;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Which of the competing processes failed a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailurePhase {
    /// Manufacturing escape (early life).
    InfantMortality,
    /// Random failure during useful life.
    UsefulLife,
    /// Wearout at end of life.
    Wearout,
}

/// A sampled unit lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitFailure {
    /// Time to failure in hours.
    pub hours: f64,
    /// The process that caused it.
    pub phase: FailurePhase,
}

/// Composite bathtub lifetime model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BathtubModel {
    /// Fraction of the population carrying a manufacturing weakness
    /// (infant mortality affects only a subpopulation, \[27\]).
    pub weak_fraction: f64,
    /// Infant-mortality process of the weak subpopulation (shape < 1).
    pub infant: Weibull,
    /// Constant-rate useful-life process.
    pub useful: Exponential,
    /// Wearout process (shape > 1).
    pub wearout: Weibull,
}

impl BathtubModel {
    /// An automotive-ECU-flavoured default, calibrated to the paper's
    /// anchors: useful-life rate of 50 / 10⁶ / year and wearout onset well
    /// past a 15-year vehicle life for most units.
    pub fn automotive_ecu() -> Self {
        let hours_per_year = 365.25 * 24.0;
        BathtubModel {
            weak_fraction: 0.02,
            // Weak units die mostly within the first weeks.
            infant: Weibull::new(0.5, 0.05 * hours_per_year),
            // 50 per 1e6 per year → λ = 5e-5 / year.
            useful: Exponential::new(5e-5 / hours_per_year),
            // Characteristic wearout life ~22 years, steep onset.
            wearout: Weibull::new(8.0, 22.0 * hours_per_year),
        }
    }

    /// Samples the time-to-failure of one shipped unit (competing risks).
    pub fn sample_failure_hours(&self, rng: &mut SmallRng) -> UnitFailure {
        let weak = rng.chance(self.weak_fraction);
        let mut best =
            UnitFailure { hours: self.useful.sample_hours(rng), phase: FailurePhase::UsefulLife };
        // Keep the RNG draw sequence fixed regardless of branching: sample
        // wearout unconditionally, infant only for weak units (the chance
        // draw already consumed its stream position).
        let w = self.wearout.sample_hours(rng);
        if w < best.hours {
            best = UnitFailure { hours: w, phase: FailurePhase::Wearout };
        }
        if weak {
            let i = self.infant.sample_hours(rng);
            if i < best.hours {
                best = UnitFailure { hours: i, phase: FailurePhase::InfantMortality };
            }
        }
        best
    }

    /// Analytic population hazard at `t` hours.
    ///
    /// Useful-life and wearout risks act on every unit, so their hazards
    /// add directly. The infant process only acts on the weak
    /// subpopulation, which *depletes*: its population-level contribution
    /// is `w·f_I(t) / ((1−w) + w·S_I(t))` — once the weak units have died,
    /// the survivors no longer carry infant risk (this is why infant
    /// mortality "tends to affect only a subpopulation", \[27\]).
    pub fn hazard(&self, t_hours: f64) -> f64 {
        let w = self.weak_fraction;
        let s_i = 1.0 - self.infant.cdf(t_hours);
        let f_i = self.infant.hazard(t_hours) * s_i;
        let infant_pop = if w > 0.0 { w * f_i / ((1.0 - w) + w * s_i) } else { 0.0 };
        infant_pop + self.useful.hazard(t_hours) + self.wearout.hazard(t_hours)
    }
}

/// Empirical hazard estimate from unit lifetimes.
///
/// For each calendar bin, hazard ≈ failures-in-bin / (survivors-at-bin-start
/// × bin width). Units surviving the horizon are right-censored.
pub fn empirical_hazard(
    lifetimes_hours: &[f64],
    horizon_hours: f64,
    bins: usize,
) -> Vec<(f64, f64)> {
    assert!(bins > 0 && horizon_hours > 0.0);
    let width = horizon_hours / bins as f64;
    let mut failures = vec![0u64; bins];
    for &t in lifetimes_hours {
        if t < horizon_hours {
            failures[(t / width) as usize] += 1;
        }
    }
    let mut out = Vec::with_capacity(bins);
    let mut survivors = lifetimes_hours.len() as f64;
    for (k, &f) in failures.iter().enumerate() {
        let centre = width * (k as f64 + 0.5);
        let h = if survivors > 0.0 { f as f64 / (survivors * width) } else { 0.0 };
        out.push((centre, h));
        survivors -= f as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use decos_sim::SeedSource;

    fn rng() -> SmallRng {
        SeedSource::new(91).stream("bathtub", 0)
    }

    #[test]
    fn analytic_hazard_is_bathtub_shaped() {
        let m = BathtubModel::automotive_ecu();
        let y = 365.25 * 24.0;
        let early = m.hazard(0.05 * y);
        let mid = m.hazard(5.0 * y);
        let late = m.hazard(20.0 * y);
        assert!(early > mid, "infant phase must exceed useful life ({early} vs {mid})");
        assert!(late > mid * 100.0, "wearout must dominate ({late} vs {mid})");
    }

    #[test]
    fn useful_life_plateau_matches_field_rate() {
        let m = BathtubModel::automotive_ecu();
        let y = 365.25 * 24.0;
        // At 5 years: infant contribution negligible, wearout not yet.
        let per_year = m.hazard(5.0 * y) * y;
        assert!(
            (per_year - 5e-5).abs() < 2.5e-5,
            "plateau {per_year}/year should be near 5e-5 (50 per 1e6)"
        );
    }

    #[test]
    fn sampled_phases_partition_sensibly() {
        let m = BathtubModel::automotive_ecu();
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<UnitFailure> = (0..n).map(|_| m.sample_failure_hours(&mut r)).collect();
        let y = 365.25 * 24.0;
        // Infant failures concentrate early.
        let infants: Vec<f64> = samples
            .iter()
            .filter(|u| u.phase == FailurePhase::InfantMortality)
            .map(|u| u.hours)
            .collect();
        assert!(!infants.is_empty());
        let infant_median = {
            let mut v = infants.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!(infant_median < y, "infant median {infant_median} h should be < 1 year");
        // Wearout failures concentrate late.
        let wear: Vec<f64> =
            samples.iter().filter(|u| u.phase == FailurePhase::Wearout).map(|u| u.hours).collect();
        let wear_mean = wear.iter().sum::<f64>() / wear.len() as f64;
        assert!(wear_mean > 10.0 * y, "wearout mean {wear_mean} h should be ≥ 10 years");
        // Infant fraction is bounded by the weak fraction.
        let infant_frac = infants.len() as f64 / n as f64;
        assert!(infant_frac <= m.weak_fraction * 1.2 + 0.01);
    }

    #[test]
    fn empirical_hazard_reproduces_bathtub() {
        let m = BathtubModel::automotive_ecu();
        let mut r = rng();
        let n = 200_000;
        let lifetimes: Vec<f64> = (0..n).map(|_| m.sample_failure_hours(&mut r).hours).collect();
        let y = 365.25 * 24.0;
        let horizon = 25.0 * y;
        let series = empirical_hazard(&lifetimes, horizon, 25);
        // First bin (year 1) above the plateau (years 3-10), last bins far above.
        let first = series[0].1;
        let plateau: f64 = series[3..10].iter().map(|p| p.1).sum::<f64>() / 7.0;
        let late = series[22].1;
        assert!(first > plateau * 3.0, "first {first} vs plateau {plateau}");
        assert!(late > plateau * 50.0, "late {late} vs plateau {plateau}");
    }

    #[test]
    fn empirical_hazard_handles_censoring() {
        // All units survive the horizon → zero hazard everywhere.
        let lifetimes = vec![1e9; 100];
        let series = empirical_hazard(&lifetimes, 1000.0, 4);
        assert!(series.iter().all(|&(_, h)| h == 0.0));
        assert_eq!(series.len(), 4);
    }
}
