//! Pecht's law — the semiconductor reliability trend (§III-E).
//!
//! "Semiconductor device reliability in terms of time-to-failure is
//! doubling every fourteen months" \[22\]. The paper uses this to argue that
//! *permanent* rates keep falling while *transient* rates rise with
//! shrinking geometries — the asymmetry that makes the transient-failure
//! wearout indicator viable. This module models both trends so experiments
//! can scale fault rates across technology generations.

use crate::fit::FitRate;

/// Reliability doubling period of Pecht's law, in months.
pub const DOUBLING_MONTHS: f64 = 14.0;

/// Scales a *permanent* failure rate from a reference year to a target
/// year under Pecht's law (rates halve every 14 months).
pub fn permanent_rate_at(reference: FitRate, reference_year: f64, target_year: f64) -> FitRate {
    let months = (target_year - reference_year) * 12.0;
    reference.scaled(0.5f64.powf(months / DOUBLING_MONTHS))
}

/// Transient-rate trend: soft-error rates *grow* with shrinking geometries
/// (\[24\]). We model a compounding growth per technology year.
pub fn transient_rate_at(
    reference: FitRate,
    reference_year: f64,
    target_year: f64,
    growth_per_year: f64,
) -> FitRate {
    reference.scaled((1.0 + growth_per_year).powf(target_year - reference_year))
}

/// Transient-to-permanent rate ratio at a target year, starting from the
/// paper's assumptions (100 FIT permanent, 100 000 FIT transient at the
/// reference year).
pub fn transient_permanent_ratio(years_ahead: f64, transient_growth_per_year: f64) -> f64 {
    let p = permanent_rate_at(crate::fit::PERMANENT_HW_FIT, 0.0, years_ahead);
    let t = transient_rate_at(
        crate::fit::TRANSIENT_HW_FIT,
        0.0,
        years_ahead,
        transient_growth_per_year,
    );
    t.0 / p.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permanent_rate_halves_every_14_months() {
        let r0 = FitRate(100.0);
        let r = permanent_rate_at(r0, 2005.0, 2005.0 + 14.0 / 12.0);
        assert!((r.0 - 50.0).abs() < 1e-9);
        let r2 = permanent_rate_at(r0, 2005.0, 2005.0 + 28.0 / 12.0);
        assert!((r2.0 - 25.0).abs() < 1e-9);
    }

    #[test]
    fn backwards_in_time_increases() {
        let r = permanent_rate_at(FitRate(100.0), 2005.0, 2005.0 - 14.0 / 12.0);
        assert!((r.0 - 200.0).abs() < 1e-9);
    }

    #[test]
    fn transient_rate_grows() {
        let r = transient_rate_at(FitRate(100_000.0), 2005.0, 2010.0, 0.1);
        assert!((r.0 - 100_000.0 * 1.1f64.powi(5)).abs() < 1e-6);
    }

    #[test]
    fn ratio_widens_over_time() {
        let now = transient_permanent_ratio(0.0, 0.1);
        let later = transient_permanent_ratio(10.0, 0.1);
        assert!((now - 1000.0).abs() < 1e-6, "paper baseline ratio is 1000:1");
        assert!(later > now * 10.0, "the asymmetry must widen");
    }
}
