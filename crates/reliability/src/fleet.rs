//! Fleet statistics.
//!
//! The paper's empirical anchors (\[16\], \[21\]) are *fleet-level* statements:
//! failures per million units per year, and the 20–80 concentration of
//! software failures over modules. This module aggregates per-unit
//! simulation outcomes into those fleet-level views.

use serde::{Deserialize, Serialize};

/// Failures-per-million-units-per-year series over calendar years.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetFailureRates {
    /// Rate per year bin: `rates[y]` = failures per 10⁶ surviving units in
    /// year `y`.
    pub per_million_per_year: Vec<f64>,
    /// Units that entered each year.
    pub survivors_at_start: Vec<u64>,
}

/// Computes yearly failure rates from unit lifetimes (hours), for a fleet
/// of `lifetimes.len()` units observed over `years`.
pub fn fleet_failure_rates(lifetimes_hours: &[f64], years: usize) -> FleetFailureRates {
    let hours_per_year = 365.25 * 24.0;
    let mut failures = vec![0u64; years];
    for &t in lifetimes_hours {
        let y = (t / hours_per_year) as usize;
        if y < years {
            failures[y] += 1;
        }
    }
    let mut survivors = lifetimes_hours.len() as u64;
    let mut rates = Vec::with_capacity(years);
    let mut starts = Vec::with_capacity(years);
    for &f in &failures {
        starts.push(survivors);
        let rate = if survivors > 0 { f as f64 / survivors as f64 * 1e6 } else { 0.0 };
        rates.push(rate);
        survivors -= f;
    }
    FleetFailureRates { per_million_per_year: rates, survivors_at_start: starts }
}

/// Concentration statistics of failures over modules (the 20–80 rule,
/// \[21\]: "20% of the software modules are causing 80% of the software
/// related failures during operation").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Concentration {
    /// Fraction of total failures attributable to the busiest 20% of
    /// modules.
    pub top20_share: f64,
    /// Gini coefficient of the per-module failure distribution.
    pub gini: f64,
}

/// Computes failure concentration over per-module failure counts.
pub fn concentration(per_module_failures: &[u64]) -> Concentration {
    if per_module_failures.is_empty() {
        return Concentration { top20_share: 0.0, gini: 0.0 };
    }
    let total: u64 = per_module_failures.iter().sum();
    if total == 0 {
        return Concentration { top20_share: 0.0, gini: 0.0 };
    }
    let mut sorted: Vec<u64> = per_module_failures.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a)); // descending
    let top_n = (sorted.len() as f64 * 0.2).ceil().max(1.0) as usize;
    let top: u64 = sorted[..top_n.min(sorted.len())].iter().sum();
    let top20_share = top as f64 / total as f64;

    // Gini over ascending order.
    sorted.reverse();
    let n = sorted.len() as f64;
    let mut cum = 0.0;
    let mut weighted = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        cum += x as f64;
        weighted += (i as f64 + 1.0) * x as f64;
    }
    let gini = (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
    Concentration { top20_share, gini }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yearly_rates() {
        let h = 365.25 * 24.0;
        // 4 units: fail in year 0, year 1, year 1, survive.
        let lifetimes = vec![0.5 * h, 1.2 * h, 1.9 * h, 100.0 * h];
        let r = fleet_failure_rates(&lifetimes, 3);
        assert_eq!(r.survivors_at_start, vec![4, 3, 1]);
        assert!((r.per_million_per_year[0] - 0.25e6).abs() < 1.0);
        assert!((r.per_million_per_year[1] - 2.0 / 3.0 * 1e6).abs() < 1.0);
        assert_eq!(r.per_million_per_year[2], 0.0);
    }

    #[test]
    fn empty_fleet() {
        let r = fleet_failure_rates(&[], 2);
        assert_eq!(r.per_million_per_year, vec![0.0, 0.0]);
    }

    #[test]
    fn concentration_uniform_is_low() {
        let c = concentration(&[10; 100]);
        assert!((c.top20_share - 0.2).abs() < 1e-9);
        assert!(c.gini.abs() < 1e-9);
    }

    #[test]
    fn concentration_pareto_is_high() {
        // 20 modules with 40 failures each, 80 modules with 2 or 3:
        // roughly the 20-80 shape.
        let mut v = vec![40u64; 20];
        v.extend(vec![2u64; 80]);
        let c = concentration(&v);
        assert!(c.top20_share > 0.75, "top20 {}", c.top20_share);
        assert!(c.gini > 0.5, "gini {}", c.gini);
    }

    #[test]
    fn concentration_degenerate() {
        assert_eq!(concentration(&[]).top20_share, 0.0);
        assert_eq!(concentration(&[0, 0, 0]).gini, 0.0);
        let single = concentration(&[7]);
        assert!((single.top20_share - 1.0).abs() < 1e-9);
    }
}
