//! Lifetime distributions: exponential and Weibull.
//!
//! Implemented locally (inverse-CDF sampling) instead of pulling in
//! `rand_distr`: the two distributions and their hazard functions are a few
//! lines each, and owning them lets the property tests pin the exact
//! sampling semantics the fleet experiments depend on.

use rand::rngs::SmallRng;
use rand::RngExt as _;
use serde::{Deserialize, Serialize};

/// Exponential lifetime distribution (constant hazard — the useful-life
/// phase of the bathtub curve).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    /// Rate λ per hour.
    pub rate_per_hour: f64,
}

impl Exponential {
    /// Creates a distribution with rate `λ` per hour (must be positive).
    pub fn new(rate_per_hour: f64) -> Self {
        assert!(rate_per_hour > 0.0 && rate_per_hour.is_finite());
        Exponential { rate_per_hour }
    }

    /// Samples a lifetime in hours.
    pub fn sample_hours(&self, rng: &mut SmallRng) -> f64 {
        // 1 - U ∈ (0, 1]: ln never sees zero.
        let u = 1.0 - rng.random::<f64>();
        -u.ln() / self.rate_per_hour
    }

    /// Hazard function (constant).
    pub fn hazard(&self, _t_hours: f64) -> f64 {
        self.rate_per_hour
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, t_hours: f64) -> f64 {
        if t_hours <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate_per_hour * t_hours).exp()
        }
    }

    /// Mean lifetime in hours.
    pub fn mean_hours(&self) -> f64 {
        1.0 / self.rate_per_hour
    }
}

/// Weibull lifetime distribution.
///
/// Shape `k < 1` gives a decreasing hazard (infant mortality); `k = 1`
/// reduces to the exponential; `k > 1` gives an increasing hazard
/// (wearout). Scale `λ` is the characteristic life in hours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    /// Shape parameter k.
    pub shape: f64,
    /// Scale parameter λ, hours.
    pub scale_hours: f64,
}

impl Weibull {
    /// Creates a Weibull distribution (both parameters must be positive).
    pub fn new(shape: f64, scale_hours: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite());
        assert!(scale_hours > 0.0 && scale_hours.is_finite());
        Weibull { shape, scale_hours }
    }

    /// Samples a lifetime in hours via the inverse CDF:
    /// `λ · (−ln(1−U))^(1/k)`.
    pub fn sample_hours(&self, rng: &mut SmallRng) -> f64 {
        let u = 1.0 - rng.random::<f64>();
        self.scale_hours * (-u.ln()).powf(1.0 / self.shape)
    }

    /// Hazard function `(k/λ)·(t/λ)^(k−1)`.
    pub fn hazard(&self, t_hours: f64) -> f64 {
        if t_hours < 0.0 {
            return 0.0;
        }
        if t_hours == 0.0 {
            // k<1: infinite at 0; k=1: λ⁻¹; k>1: 0.
            return match self.shape.partial_cmp(&1.0).expect("finite") {
                core::cmp::Ordering::Less => f64::INFINITY,
                core::cmp::Ordering::Equal => 1.0 / self.scale_hours,
                core::cmp::Ordering::Greater => 0.0,
            };
        }
        (self.shape / self.scale_hours) * (t_hours / self.scale_hours).powf(self.shape - 1.0)
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, t_hours: f64) -> f64 {
        if t_hours <= 0.0 {
            0.0
        } else {
            1.0 - (-(t_hours / self.scale_hours).powf(self.shape)).exp()
        }
    }

    /// Mean lifetime `λ·Γ(1 + 1/k)` in hours.
    pub fn mean_hours(&self) -> f64 {
        self.scale_hours * gamma(1.0 + 1.0 / self.shape)
    }
}

/// Gamma function via the Lanczos approximation (g = 7, n = 9).
///
/// Needed only for Weibull means; accuracy ~1e-13 over the parameter ranges
/// used here, verified against known values in the tests.
pub fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // Published Lanczos coefficients, kept verbatim (beyond f64 precision).
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        core::f64::consts::PI / ((core::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * core::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decos_sim::SeedSource;

    fn rng(i: u64) -> SmallRng {
        SeedSource::new(55).stream("dist", i)
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - core::f64::consts::PI.sqrt()).abs() < 1e-12);
        assert!((gamma(1.5) - 0.886_226_925_452_758).abs() < 1e-12);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::new(0.01); // mean 100 h
        let mut r = rng(0);
        let n = 100_000;
        let m = (0..n).map(|_| d.sample_hours(&mut r)).sum::<f64>() / n as f64;
        assert!((m - 100.0).abs() < 1.5, "mean {m}");
        assert_eq!(d.mean_hours(), 100.0);
    }

    #[test]
    fn exponential_cdf_and_hazard() {
        let d = Exponential::new(0.5);
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(d.hazard(0.0), 0.5);
        assert_eq!(d.hazard(100.0), 0.5);
    }

    #[test]
    fn weibull_k1_equals_exponential() {
        let w = Weibull::new(1.0, 100.0);
        let e = Exponential::new(0.01);
        for t in [0.0, 1.0, 50.0, 400.0] {
            assert!((w.cdf(t) - e.cdf(t)).abs() < 1e-12, "t={t}");
            assert!((w.hazard(t) - e.hazard(t)).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn weibull_hazard_shapes() {
        let infant = Weibull::new(0.5, 1000.0);
        assert!(infant.hazard(1.0) > infant.hazard(100.0), "k<1 hazard must decrease");
        assert_eq!(infant.hazard(0.0), f64::INFINITY);

        let wearout = Weibull::new(3.0, 1000.0);
        assert!(wearout.hazard(100.0) < wearout.hazard(500.0), "k>1 hazard must increase");
        assert_eq!(wearout.hazard(0.0), 0.0);
    }

    #[test]
    fn weibull_sample_mean_matches_formula() {
        let w = Weibull::new(2.0, 500.0);
        let mut r = rng(1);
        let n = 100_000;
        let m = (0..n).map(|_| w.sample_hours(&mut r)).sum::<f64>() / n as f64;
        let expect = w.mean_hours(); // 500 * Γ(1.5) ≈ 443.1
        assert!((m - expect).abs() / expect < 0.01, "mean {m} vs {expect}");
    }

    #[test]
    fn weibull_samples_match_cdf() {
        let w = Weibull::new(3.0, 200.0);
        let mut r = rng(2);
        let n = 50_000;
        let t = 180.0;
        let frac = (0..n).filter(|_| w.sample_hours(&mut r) <= t).count() as f64 / n as f64;
        assert!((frac - w.cdf(t)).abs() < 0.01, "empirical {frac} vs cdf {}", w.cdf(t));
    }

    #[test]
    fn samples_are_positive() {
        let w = Weibull::new(0.7, 10.0);
        let e = Exponential::new(5.0);
        let mut r = rng(3);
        for _ in 0..10_000 {
            assert!(w.sample_hours(&mut r) >= 0.0);
            assert!(e.sample_hours(&mut r) >= 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_shape_rejected() {
        Weibull::new(0.0, 1.0);
    }
}
