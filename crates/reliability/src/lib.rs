//! # decos-reliability — reliability mathematics behind the fault model
//!
//! Quantitative substrate for §III-E (assumptions behind the fault model)
//! and Fig. 7 (bathtub curve):
//!
//! * [`fit`] — FIT rates and the paper's numeric anchors;
//! * [`dist`] — exponential and Weibull lifetime distributions (sampling,
//!   hazard, CDF), implemented and property-tested locally;
//! * [`bathtub`] — the composite bathtub model and empirical hazard
//!   estimation (experiment E5 regenerates Fig. 7 with these);
//! * [`alpha_count`] — the α-count transient-discrimination heuristic of
//!   Bondavalli et al. \[33\] used in §V-C;
//! * [`fleet`] — fleet-level aggregation (failures per 10⁶ per year, the
//!   20–80 concentration rule);
//! * [`pecht`] — Pecht's-law trends for permanent vs. transient rates.

pub mod alpha_count;
pub mod bathtub;
pub mod dist;
pub mod fit;
pub mod fleet;
pub mod pecht;

pub use alpha_count::{AlphaCount, AlphaParams, AlphaVerdict};
pub use bathtub::{empirical_hazard, BathtubModel, FailurePhase, UnitFailure};
pub use dist::{gamma, Exponential, Weibull};
pub use fit::{FitRate, PERMANENT_HW_FIT, TRANSIENT_HW_FIT, USEFUL_LIFE_FIELD_FIT};
pub use fleet::{concentration, fleet_failure_rates, Concentration, FleetFailureRates};
