//! Crash matrix at the store layer (ISSUE 9): kill the writer at every
//! byte boundary of a journal record and prove recovery never loses a
//! committed record nor resurrects an uncommitted one.
//!
//! The campaign-level twin of this suite (crashing a real simulation and
//! checking resume fingerprints) lives in the repo-root `store_resume`
//! test; this one exhausts the byte-offset space cheaply on synthetic
//! records through [`FaultIo`].

use decos_store::frame::framed_len;
use decos_store::store::{Manifest, Store, StoreError, JOURNAL_FILE, STORE_SCHEMA};
use decos_store::{FaultIo, FaultPlan, ROUND_DELTA_KIND};

fn manifest() -> Manifest {
    Manifest {
        schema: STORE_SCHEMA.to_string(),
        kind: "campaign".to_string(),
        workload: "crash-matrix".to_string(),
        spec_hash: 0xDEAD_BEEF,
        seed: 1,
        accel: 1.0,
        rounds: 64,
        vehicles: 1,
        snapshot_every: 0,
    }
}

fn payload(r: u64) -> Vec<u8> {
    // Distinctive, round-dependent content so a resurrected or shuffled
    // record cannot masquerade as the right one.
    (0..24).map(|i| (r as u8).wrapping_mul(31).wrapping_add(i)).collect()
}

/// One framed record's length for this suite's payloads.
fn record_len() -> u64 {
    framed_len(payload(0).len()) as u64
}

#[test]
fn crash_at_every_byte_of_a_record_preserves_exactly_the_committed_prefix() {
    const COMMITTED: u64 = 5;
    let rec = record_len();
    let base = COMMITTED * rec;
    // Sweep the crash budget across every byte of record COMMITTED (plus
    // the clean boundary on each side).
    for extra in 0..=rec {
        let io = FaultIo::with_plan(FaultPlan {
            crash_after_bytes: Some(base + extra),
            ..Default::default()
        });
        let mut s = Store::create(io.clone(), manifest()).unwrap();
        let mut written = 0u64;
        for r in 0..COMMITTED + 1 {
            match s.append(ROUND_DELTA_KIND, r, r, &payload(r)) {
                Ok(()) => written += 1,
                Err(e) => {
                    assert!(
                        matches!(e, StoreError::Io(_)),
                        "crash at +{extra} must surface as I/O, got {e}"
                    );
                    break;
                }
            }
        }
        if extra == rec {
            assert_eq!(written, COMMITTED + 1, "full budget fits every record");
        } else {
            assert_eq!(written, COMMITTED, "crash lands inside the last record");
        }
        assert_eq!(io.crashed(), extra < rec);

        // "Restart the process" on the surviving disk image and recover.
        io.restart();
        let mut back = Store::open(io.clone()).expect("recovery must never fail on a torn tail");
        let recovered = back.records().to_vec();
        let expect = written.min(COMMITTED + 1);
        assert_eq!(
            recovered.len() as u64,
            expect,
            "crash at +{extra}: committed records must survive, uncommitted must not"
        );
        for (r, got) in recovered.iter().enumerate() {
            assert_eq!(got.round, r as u64, "crash at +{extra}");
            assert_eq!(got.payload, payload(r as u64), "crash at +{extra}");
        }
        // Torn bytes (if any) are quarantined, never deleted; the journal
        // is truncated back to the committed prefix.
        let torn_bytes = extra.min(rec) % rec;
        if torn_bytes > 0 {
            let q = back.quarantine_names().unwrap();
            assert_eq!(q.len(), 1, "crash at +{extra}: torn tail must be quarantined");
            assert_eq!(back.stats().quarantined_bytes, torn_bytes, "crash at +{extra}");
        } else {
            assert!(back.quarantine_names().unwrap().is_empty(), "clean boundary at +{extra}");
        }
        assert_eq!(io.file(JOURNAL_FILE).unwrap().len() as u64, expect * rec);

        // The recovered store keeps appending from where it left off.
        let next = recovered.len() as u64;
        back.append(ROUND_DELTA_KIND, next, next, &payload(next)).unwrap();
        back.sync().unwrap();
        let reread = Store::open(io).unwrap();
        assert_eq!(reread.records().len() as u64, next + 1);
        assert!(reread.stats().torn.is_none());
    }
}

#[test]
fn crash_during_atomic_manifest_update_keeps_the_old_manifest() {
    let io = FaultIo::pristine();
    let mut s = Store::create(io.clone(), manifest()).unwrap();
    s.append(ROUND_DELTA_KIND, 0, 0, &payload(0)).unwrap();
    drop(s);
    // Arm the plan so the next atomic write dies before its rename.
    let io2 =
        FaultIo::from_files(io.files(), FaultPlan { crash_on_atomic: true, ..Default::default() });
    let mut s2 = Store::open(io2.clone()).unwrap();
    let mut grown = manifest();
    grown.rounds = 128;
    assert!(s2.update_manifest(grown).is_err(), "budgeted crash must fire");
    io2.restart();
    let back = Store::open(io2).unwrap();
    assert_eq!(back.manifest().rounds, 64, "old manifest survives the torn update");
    assert_eq!(back.records().len(), 1);
}

#[test]
fn double_crash_during_recovery_is_idempotent() {
    // Crash leaves a torn tail; recovery quarantines it; a second crash
    // before the truncate would leave quarantine written but the journal
    // still long. Re-running recovery must converge to the same state.
    let io = FaultIo::pristine();
    let mut s = Store::create(io.clone(), manifest()).unwrap();
    for r in 0..3u64 {
        s.append(ROUND_DELTA_KIND, r, r, &payload(r)).unwrap();
    }
    drop(s);
    let mut j = io.file(JOURNAL_FILE).unwrap();
    j.truncate(j.len() - 7);
    io.put(JOURNAL_FILE, j);

    let a = Store::open(io.clone()).unwrap();
    assert_eq!(a.records().len(), 2);
    drop(a);
    let b = Store::open(io.clone()).unwrap();
    assert_eq!(b.records().len(), 2);
    assert!(b.stats().torn.is_none(), "second open sees an already-clean journal");
    assert_eq!(io.files().keys().filter(|k| k.starts_with("quarantine/")).count(), 1);
}
