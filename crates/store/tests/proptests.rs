//! Property coverage for the journal codec and framing (ISSUE 9):
//! arbitrary round deltas encode→decode bit-identically, and any
//! single-byte mutation of a framed record is rejected by the CRC check.

use decos_store::codec::{RoundDelta, ROUND_DELTA_LEN};
use decos_store::frame::{self, encode_record, scan};
use decos_store::ROUND_DELTA_KIND;
use proptest::prelude::*;
use proptest::Any;

use decos_faults::DiagDisturbance;
use decos_platform::NodeId;

type Four = (u64, u64, u64, u64);

fn delta(
    round: u64,
    net: Four,
    frames: Four,
    lifecycle: (u64, u64, u32),
    quality: f64,
    disturbance: DiagDisturbance,
) -> RoundDelta {
    let (offered, delivered, dropped, corrupted) = net;
    let (rejected, delayed, forged_suspected, ona_matches) = frames;
    let (frozen_rounds, crashed_rounds, failovers) = lifecycle;
    RoundDelta {
        round,
        offered,
        delivered,
        dropped,
        corrupted,
        rejected,
        delayed,
        forged_suspected,
        ona_matches,
        frozen_rounds,
        crashed_rounds,
        failovers,
        quality_bits: quality.to_bits(),
        disturbance,
    }
}

fn four() -> (Any<u64>, Any<u64>, Any<u64>, Any<u64>) {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
}

proptest! {
    #[test]
    fn round_delta_round_trips_bit_identically(
        round in any::<u64>(),
        net in four(),
        frames in four(),
        lifecycle in (any::<u64>(), any::<u64>(), any::<u32>()),
        quality in 0.0f64..1.0,
        loss in 0.0f64..1.0,
        corrupt in 0.0f64..1.0,
        delay in any::<u32>(),
        babbler in proptest::option::of(any::<u16>()),
        forged in any::<u32>(),
        crashed in any::<bool>(),
    ) {
        let d = delta(round, net, frames, lifecycle, quality, DiagDisturbance {
            loss_prob: loss,
            corrupt_prob: corrupt,
            delay_rounds: delay,
            babbler: babbler.map(NodeId),
            forged_per_round: forged,
            crashed,
        });
        let enc = d.encode();
        prop_assert_eq!(enc.len(), ROUND_DELTA_LEN);
        let back = RoundDelta::decode(&enc).unwrap();
        prop_assert_eq!(back, d);
        prop_assert_eq!(back.encode(), enc, "re-encode must be byte-identical");
    }

    #[test]
    fn any_single_byte_mutation_of_a_framed_record_is_rejected(
        round in 0u64..1_000_000,
        net in four(),
        quality in 0.0f64..1.0,
        byte in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let d = delta(round, net, (0, 0, 0, 0), (0, 0, 0), quality, DiagDisturbance::NONE);
        let mut framed = Vec::new();
        encode_record(ROUND_DELTA_KIND, round, round, &d.encode(), &mut framed);
        let idx = byte % framed.len();
        framed[idx] ^= mask;
        let out = scan(&framed);
        // Whatever byte was flipped — magic, header, payload or CRC — the
        // scan must not hand back a valid record claiming to be this one.
        prop_assert!(
            out.records.is_empty(),
            "flip at byte {} (of {}) survived: {:?}",
            idx, framed.len(), out.records[0]
        );
        prop_assert!(out.torn.is_some());
    }

    #[test]
    fn journals_of_random_deltas_scan_back_fully(
        rounds in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), 0u64..1000), 1..20),
    ) {
        let mut journal = Vec::new();
        let mut expect = Vec::new();
        for (i, &(offered, delivered, quality_seed)) in rounds.iter().enumerate() {
            let d = delta(
                i as u64,
                (offered, delivered, 0, 0),
                (0, 0, 0, 0),
                (0, 0, 0),
                quality_seed as f64 / 1000.0,
                DiagDisturbance::NONE,
            );
            encode_record(ROUND_DELTA_KIND, i as u64, i as u64, &d.encode(), &mut journal);
            expect.push(d);
        }
        let out = scan(&journal);
        prop_assert!(out.torn.is_none());
        prop_assert_eq!(out.valid_len, journal.len() as u64);
        prop_assert_eq!(out.records.len(), expect.len());
        for (rec, want) in out.records.iter().zip(&expect) {
            prop_assert_eq!(rec.kind, ROUND_DELTA_KIND);
            prop_assert_eq!(RoundDelta::decode(&rec.payload).unwrap(), *want);
        }
    }

    #[test]
    fn crc32_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..200),
        bit in any::<usize>(),
    ) {
        let clean = frame::crc32(&data);
        let mut flipped = data.clone();
        let b = bit % (data.len() * 8);
        flipped[b / 8] ^= 1 << (b % 8);
        prop_assert_ne!(clean, frame::crc32(&flipped));
    }
}
