//! Binary codec for the per-round campaign delta.
//!
//! One [`RoundDelta`] is journaled per TDMA round: the round's increments
//! of every dissemination counter and lifecycle statistic, the cumulative
//! delivery quality at round end (bit-exact, via `f64::to_bits`), and the
//! diagnostic-path disturbance in force. The encoding is fixed-width
//! little-endian with a leading version byte — no varints, no padding —
//! so any two encodings of equal deltas are byte-identical, which is what
//! the resume path's replay-verify step compares against.

use decos_faults::DiagDisturbance;
use decos_platform::NodeId;

/// Record kind tag for campaign round deltas.
pub const ROUND_DELTA_KIND: u8 = 1;
/// Record kind tag for fleet vehicle outcomes (opaque JSON payload,
/// encoded by the `decos` layer).
pub const VEHICLE_KIND: u8 = 2;

/// Codec version byte opening every [`RoundDelta`] payload.
const VERSION: u8 = 1;
/// Sentinel for "no babbler" in the disturbance encoding ([`NodeId`] is
/// `u16`, so `u32::MAX` can never collide with a real node).
const NO_BABBLER: u32 = u32::MAX;
/// Fixed encoded size: version + 10 u64 counters + failovers u32 +
/// quality bits u64 + crashed-rounds u64 + disturbance (8+8+4+4+4+1).
pub const ROUND_DELTA_LEN: usize = 1 + 10 * 8 + 4 + 8 + 8 + 29;

/// Why a payload failed to decode (the frame CRC already passed, so this
/// indicates a version or layout mismatch, not a torn write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Payload shorter than the fixed layout.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Payload longer than the fixed layout.
    TrailingBytes,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "round-delta payload truncated"),
            CodecError::BadVersion(v) => write!(f, "unknown round-delta codec version {v}"),
            CodecError::TrailingBytes => write!(f, "round-delta payload has trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// One round's journal entry: per-round increments plus end-of-round
/// cumulative quality and the active diagnostic-path disturbance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundDelta {
    /// TDMA round index.
    pub round: u64,
    /// Symptoms offered to the diagnostic network this round.
    pub offered: u64,
    /// Symptoms delivered this round.
    pub delivered: u64,
    /// Symptoms dropped this round.
    pub dropped: u64,
    /// Frames corrupted this round.
    pub corrupted: u64,
    /// Frames rejected this round.
    pub rejected: u64,
    /// Frames delayed this round.
    pub delayed: u64,
    /// Frames flagged as forged this round.
    pub forged_suspected: u64,
    /// ONA pattern matches this round.
    pub ona_matches: u64,
    /// Trust-frozen rounds accrued this round (0 or 1).
    pub frozen_rounds: u64,
    /// Crashed-diagnostic rounds accrued this round (0 or 1).
    pub crashed_rounds: u64,
    /// Cold-standby failovers this round.
    pub failovers: u32,
    /// Cumulative mean delivery quality at round end, as raw bits —
    /// bit-exact across replay by the determinism contract.
    pub quality_bits: u64,
    /// The diagnostic-path disturbance in force at round end.
    pub disturbance: DiagDisturbance,
}

impl RoundDelta {
    /// Appends the fixed-width encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(ROUND_DELTA_LEN);
        out.push(VERSION);
        for v in [
            self.round,
            self.offered,
            self.delivered,
            self.dropped,
            self.corrupted,
            self.rejected,
            self.delayed,
            self.forged_suspected,
            self.ona_matches,
            self.frozen_rounds,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        // `crashed_rounds` rides with `failovers` and quality after the
        // u64 block to keep the layout grouping stable if counters grow.
        out.extend_from_slice(&self.failovers.to_le_bytes());
        out.extend_from_slice(&self.quality_bits.to_le_bytes());
        out.extend_from_slice(&self.crashed_rounds.to_le_bytes());
        out.extend_from_slice(&self.disturbance.loss_prob.to_bits().to_le_bytes());
        out.extend_from_slice(&self.disturbance.corrupt_prob.to_bits().to_le_bytes());
        out.extend_from_slice(&self.disturbance.delay_rounds.to_le_bytes());
        let babbler = self.disturbance.babbler.map_or(NO_BABBLER, |n| u32::from(n.0));
        out.extend_from_slice(&babbler.to_le_bytes());
        out.extend_from_slice(&self.disturbance.forged_per_round.to_le_bytes());
        out.push(u8::from(self.disturbance.crashed));
    }

    /// The fixed-width encoding as a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ROUND_DELTA_LEN);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a payload produced by [`RoundDelta::encode_into`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < ROUND_DELTA_LEN {
            return Err(CodecError::Truncated);
        }
        if bytes.len() > ROUND_DELTA_LEN {
            return Err(CodecError::TrailingBytes);
        }
        if bytes[0] != VERSION {
            return Err(CodecError::BadVersion(bytes[0]));
        }
        let mut off = 1usize;
        let u64_at = |o: &mut usize| {
            let v = u64::from_le_bytes(bytes[*o..*o + 8].try_into().unwrap());
            *o += 8;
            v
        };
        let round = u64_at(&mut off);
        let offered = u64_at(&mut off);
        let delivered = u64_at(&mut off);
        let dropped = u64_at(&mut off);
        let corrupted = u64_at(&mut off);
        let rejected = u64_at(&mut off);
        let delayed = u64_at(&mut off);
        let forged_suspected = u64_at(&mut off);
        let ona_matches = u64_at(&mut off);
        let frozen_rounds = u64_at(&mut off);
        let failovers = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        off += 4;
        let quality_bits = u64_at(&mut off);
        let crashed_rounds = u64_at(&mut off);
        let loss_prob = f64::from_bits(u64_at(&mut off));
        let corrupt_prob = f64::from_bits(u64_at(&mut off));
        let delay_rounds = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        off += 4;
        let babbler_raw = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        off += 4;
        let forged_per_round = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        off += 4;
        let crashed = bytes[off] != 0;
        let babbler = (babbler_raw != NO_BABBLER).then_some(NodeId(babbler_raw as u16));
        Ok(RoundDelta {
            round,
            offered,
            delivered,
            dropped,
            corrupted,
            rejected,
            delayed,
            forged_suspected,
            ona_matches,
            frozen_rounds,
            crashed_rounds,
            failovers,
            quality_bits,
            disturbance: DiagDisturbance {
                loss_prob,
                corrupt_prob,
                delay_rounds,
                babbler,
                forged_per_round,
                crashed,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RoundDelta {
        RoundDelta {
            round: 41,
            offered: 12,
            delivered: 11,
            dropped: 1,
            corrupted: 0,
            rejected: 2,
            delayed: 3,
            forged_suspected: 0,
            ona_matches: 4,
            frozen_rounds: 1,
            crashed_rounds: 0,
            failovers: 1,
            quality_bits: 0.987_f64.to_bits(),
            disturbance: DiagDisturbance {
                loss_prob: 0.25,
                corrupt_prob: 0.0,
                delay_rounds: 2,
                babbler: Some(NodeId(3)),
                forged_per_round: 7,
                crashed: false,
            },
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        let d = sample();
        let enc = d.encode();
        assert_eq!(enc.len(), ROUND_DELTA_LEN);
        let back = RoundDelta::decode(&enc).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.encode(), enc, "re-encoding must be byte-identical");
    }

    #[test]
    fn no_babbler_round_trips() {
        let mut d = sample();
        d.disturbance.babbler = None;
        assert_eq!(RoundDelta::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn rejects_wrong_sizes_and_versions() {
        let enc = sample().encode();
        assert_eq!(RoundDelta::decode(&enc[..enc.len() - 1]), Err(CodecError::Truncated));
        let mut long = enc.clone();
        long.push(0);
        assert_eq!(RoundDelta::decode(&long), Err(CodecError::TrailingBytes));
        let mut bad = enc;
        bad[0] = 9;
        assert_eq!(RoundDelta::decode(&bad), Err(CodecError::BadVersion(9)));
    }
}
