//! The store: a manifest, an append-only journal, snapshots, and a
//! quarantine sidecar — all behind [`crate::StoreIo`].
//!
//! Directory layout under the store root:
//!
//! ```text
//! MANIFEST.json            what experiment this store belongs to
//! journal.log              CRC-framed records (see crate::frame)
//! snapshots/snap-*.json    periodic full state captures (atomic writes)
//! quarantine/tail-*.bin    severed torn/corrupt journal tails
//! ```
//!
//! Opening a store *is* recovery: the journal is scan-validated, the valid
//! prefix becomes the committed history, and any invalid tail is moved to
//! `quarantine/` (never deleted — a torn record is evidence) before the
//! journal is truncated back to the committed length.

use crate::frame::{self, ScanRecord};
use crate::io::StoreIo;
use serde::{Deserialize, Serialize};
use std::io;

/// Store format identifier pinned in the manifest.
pub const STORE_SCHEMA: &str = "decos-store/1";
/// Manifest file name under the store root.
pub const MANIFEST_FILE: &str = "MANIFEST.json";
/// Journal file name under the store root.
pub const JOURNAL_FILE: &str = "journal.log";
/// Snapshot directory under the store root.
pub const SNAP_DIR: &str = "snapshots";
/// Quarantine directory under the store root.
pub const QUARANTINE_DIR: &str = "quarantine";

/// FNV-1a 64-bit — the workspace's canonical cheap content hash; used for
/// the manifest's experiment-spec hash and snapshot fingerprints.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Streaming FNV-1a: folds `bytes` into an existing hash state, so callers
/// can fingerprint a record sequence incrementally.
#[must_use]
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What experiment a store belongs to. Written atomically at creation and
/// whenever the horizon grows; a resume whose spec hash disagrees is
/// rejected before any simulation (analyzer code DA090).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Store format: [`STORE_SCHEMA`].
    pub schema: String,
    /// `"campaign"` or `"fleet"`.
    pub kind: String,
    /// Human-readable workload descriptor (not part of the hash).
    pub workload: String,
    /// FNV-1a hash of the canonical experiment encoding — cluster, faults,
    /// engine parameters, accel, seed. Horizon-independent so a resume may
    /// extend the run.
    pub spec_hash: u64,
    /// Master seed.
    pub seed: u64,
    /// Rate acceleration factor.
    pub accel: f64,
    /// Campaign: total rounds last targeted. Fleet: rounds per vehicle.
    pub rounds: u64,
    /// Fleet: vehicles last targeted. Campaign: 1.
    pub vehicles: u64,
    /// Snapshot cadence in rounds (campaign) or vehicles (fleet).
    pub snapshot_every: u64,
}

/// Why a store refused to open or write.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying I/O failed (including simulated crashes/ENOSPC).
    Io(io::Error),
    /// The store is structurally unusable: missing/unreadable manifest,
    /// wrong schema, or a journal that contradicts itself in ways tail
    /// truncation cannot repair (a gap in committed history).
    Corrupt(String),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Counters a store accumulates over one process lifetime. Recovery
/// fields describe what `open` found; append fields what this session
/// wrote. These feed the telemetry registry's `store_*`/`journal_*`
/// counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StoreStats {
    /// Committed records recovered at open.
    pub recovered_records: u64,
    /// Committed journal bytes recovered at open.
    pub recovered_bytes: u64,
    /// Torn-tail bytes moved to quarantine at open.
    pub quarantined_bytes: u64,
    /// Why the tail was torn, if it was.
    pub torn: Option<String>,
    /// Records appended this session.
    pub appended_records: u64,
    /// Journal bytes appended this session.
    pub appended_bytes: u64,
    /// Journal fsyncs this session.
    pub fsyncs: u64,
    /// Snapshots written this session.
    pub snapshots_written: u64,
}

/// An open store: committed records in memory, journal on "disk" via the
/// [`StoreIo`] implementation.
#[derive(Debug)]
pub struct Store<IO: StoreIo> {
    io: IO,
    manifest: Manifest,
    records: Vec<ScanRecord>,
    journal_len: u64,
    stats: StoreStats,
}

impl<IO: StoreIo> Store<IO> {
    /// Initializes a fresh store. Refuses to clobber an existing one.
    pub fn create(mut io: IO, manifest: Manifest) -> Result<Self, StoreError> {
        if io.exists(MANIFEST_FILE) {
            return Err(StoreError::Corrupt("store already initialized here".into()));
        }
        write_manifest(&mut io, &manifest)?;
        Ok(Store {
            io,
            manifest,
            records: Vec::new(),
            journal_len: 0,
            stats: StoreStats::default(),
        })
    }

    /// Opens an existing store, running recovery: scan-validate the
    /// journal, quarantine any torn tail, truncate to the committed
    /// prefix. The caller validates the manifest's spec hash against the
    /// experiment it intends to run.
    pub fn open(mut io: IO) -> Result<Self, StoreError> {
        let manifest = read_manifest(&mut io)?;
        let bytes = if io.exists(JOURNAL_FILE) { io.read(JOURNAL_FILE)? } else { Vec::new() };
        let scan = frame::scan(&bytes);
        let mut stats = StoreStats {
            recovered_records: scan.records.len() as u64,
            recovered_bytes: scan.valid_len,
            ..StoreStats::default()
        };
        if let Some(reason) = scan.torn {
            let tail = &bytes[scan.valid_len as usize..];
            stats.quarantined_bytes = tail.len() as u64;
            stats.torn = Some(reason.to_string());
            // Quarantine before truncating: if the process dies between
            // the two, the next open re-runs the same recovery and the
            // sidecar write is idempotent (same name, same bytes).
            io.write_atomic(&format!("{QUARANTINE_DIR}/tail-{}.bin", scan.valid_len), tail)?;
            io.truncate(JOURNAL_FILE, scan.valid_len)?;
        }
        Ok(Store { io, manifest, records: scan.records, journal_len: scan.valid_len, stats })
    }

    /// Opens if a manifest exists, otherwise creates with `manifest`.
    pub fn open_or_create(mut io: IO, manifest: Manifest) -> Result<Self, StoreError> {
        if io.exists(MANIFEST_FILE) {
            Store::open(io)
        } else {
            Store::create(io, manifest)
        }
    }

    /// Read-only inspection: recovery analysis without mutating anything —
    /// what `store-stat` uses. Returns the store plus the scan verdict;
    /// torn tails are reported, not quarantined.
    pub fn inspect(mut io: IO) -> Result<(Manifest, frame::ScanOutcome, u64), StoreError> {
        let manifest = read_manifest(&mut io)?;
        let bytes = if io.exists(JOURNAL_FILE) { io.read(JOURNAL_FILE)? } else { Vec::new() };
        let total = bytes.len() as u64;
        Ok((manifest, frame::scan(&bytes), total))
    }

    /// The manifest as opened.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Rewrites the manifest atomically (horizon extension on resume).
    pub fn update_manifest(&mut self, manifest: Manifest) -> Result<(), StoreError> {
        write_manifest(&mut self.io, &manifest)?;
        self.manifest = manifest;
        Ok(())
    }

    /// Committed records, oldest first.
    #[must_use]
    pub fn records(&self) -> &[ScanRecord] {
        &self.records
    }

    /// Session statistics.
    #[must_use]
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Committed journal length in bytes.
    #[must_use]
    pub fn journal_len(&self) -> u64 {
        self.journal_len
    }

    /// Appends one framed record, retrying short writes to completion.
    /// On error the journal may carry a torn record — exactly what the
    /// next open's recovery truncates.
    pub fn append(
        &mut self,
        kind: u8,
        round: u64,
        seq: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        if let Some(last) = self.records.last() {
            if (round, seq) <= (last.round, last.seq) {
                return Err(StoreError::Corrupt(format!(
                    "append out of order: ({round}, {seq}) after ({}, {})",
                    last.round, last.seq
                )));
            }
        }
        let mut buf = Vec::with_capacity(frame::framed_len(payload.len()));
        frame::encode_record(kind, round, seq, payload, &mut buf);
        let mut off = 0usize;
        while off < buf.len() {
            let n = self.io.append(JOURNAL_FILE, &buf[off..])?;
            if n == 0 {
                return Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "journal append made no progress",
                )));
            }
            off += n;
        }
        self.records.push(ScanRecord {
            kind,
            round,
            seq,
            payload: payload.to_vec(),
            offset: self.journal_len,
        });
        self.journal_len += buf.len() as u64;
        self.stats.appended_records += 1;
        self.stats.appended_bytes += buf.len() as u64;
        Ok(())
    }

    /// Fsyncs the journal — the commit point for everything appended so
    /// far.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.io.sync(JOURNAL_FILE)?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Writes a named snapshot document atomically.
    pub fn write_snapshot(&mut self, name: &str, body: &str) -> Result<(), StoreError> {
        self.io.write_atomic(&format!("{SNAP_DIR}/{name}"), body.as_bytes())?;
        self.stats.snapshots_written += 1;
        Ok(())
    }

    /// Reads a named snapshot document.
    pub fn read_snapshot(&mut self, name: &str) -> Result<String, StoreError> {
        let bytes = self.io.read(&format!("{SNAP_DIR}/{name}"))?;
        String::from_utf8(bytes)
            .map_err(|_| StoreError::Corrupt(format!("snapshot {name} is not UTF-8")))
    }

    /// Sorted snapshot names. Zero-padded round numbers in the names make
    /// lexicographic order chronological.
    pub fn snapshot_names(&mut self) -> Result<Vec<String>, StoreError> {
        Ok(self.io.list(SNAP_DIR)?)
    }

    /// Sorted quarantine sidecar names.
    pub fn quarantine_names(&mut self) -> Result<Vec<String>, StoreError> {
        Ok(self.io.list(QUARANTINE_DIR)?)
    }

    /// Direct handle to the I/O layer (tests).
    pub fn io_mut(&mut self) -> &mut IO {
        &mut self.io
    }
}

fn read_manifest<IO: StoreIo>(io: &mut IO) -> Result<Manifest, StoreError> {
    if !io.exists(MANIFEST_FILE) {
        return Err(StoreError::Corrupt("no MANIFEST.json — not a store".into()));
    }
    let bytes = io.read(MANIFEST_FILE)?;
    let text = String::from_utf8(bytes)
        .map_err(|_| StoreError::Corrupt("MANIFEST.json is not UTF-8".into()))?;
    let manifest: Manifest = serde_json::from_str(&text)
        .map_err(|e| StoreError::Corrupt(format!("MANIFEST.json unparseable: {e}")))?;
    if manifest.schema != STORE_SCHEMA {
        return Err(StoreError::Corrupt(format!(
            "schema {:?} is not {STORE_SCHEMA:?}",
            manifest.schema
        )));
    }
    Ok(manifest)
}

fn write_manifest<IO: StoreIo>(io: &mut IO, manifest: &Manifest) -> Result<(), StoreError> {
    let body = serde_json::to_string_pretty(manifest)
        .map_err(|e| StoreError::Corrupt(format!("manifest serialization failed: {e}")))?;
    io.write_atomic(MANIFEST_FILE, body.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultIo, FaultPlan};

    fn manifest() -> Manifest {
        Manifest {
            schema: STORE_SCHEMA.to_string(),
            kind: "campaign".to_string(),
            workload: "test".to_string(),
            spec_hash: 42,
            seed: 7,
            accel: 1.0,
            rounds: 100,
            vehicles: 1,
            snapshot_every: 10,
        }
    }

    #[test]
    fn create_append_reopen_round_trips() {
        let io = FaultIo::pristine();
        let mut s = Store::create(io.clone(), manifest()).unwrap();
        for r in 0..5u64 {
            s.append(1, r, r, &r.to_le_bytes()).unwrap();
        }
        s.sync().unwrap();
        s.write_snapshot("snap-000000000004.json", "{\"round\":4}").unwrap();

        let mut back = Store::open(io).unwrap();
        assert_eq!(back.manifest(), &manifest());
        assert_eq!(back.records().len(), 5);
        assert_eq!(back.stats().recovered_records, 5);
        assert_eq!(back.stats().torn, None);
        assert_eq!(back.snapshot_names().unwrap(), vec!["snap-000000000004.json".to_string()]);
        assert_eq!(back.read_snapshot("snap-000000000004.json").unwrap(), "{\"round\":4}");
    }

    #[test]
    fn torn_tail_is_quarantined_not_deleted() {
        let io = FaultIo::pristine();
        let mut s = Store::create(io.clone(), manifest()).unwrap();
        for r in 0..3u64 {
            s.append(1, r, r, b"payload").unwrap();
        }
        let committed = s.journal_len();
        // Tear the journal mid-record, as a crash would.
        let mut bytes = io.file(JOURNAL_FILE).unwrap();
        let torn_tail = bytes.split_off(committed as usize - 5);
        let mut cut = bytes;
        cut.extend_from_slice(&torn_tail[..2]);
        io.put(JOURNAL_FILE, cut);

        let mut back = Store::open(io.clone()).unwrap();
        assert_eq!(back.records().len(), 2, "two committed records survive");
        assert!(back.stats().quarantined_bytes > 0);
        assert!(back.stats().torn.is_some());
        let q = back.quarantine_names().unwrap();
        assert_eq!(q.len(), 1, "severed tail lands in quarantine: {q:?}");
        // The journal itself is truncated to the committed prefix and
        // appends continue from record 2.
        back.append(1, 2, 2, b"payload").unwrap();
        let reopened = Store::open(io).unwrap();
        assert_eq!(reopened.records().len(), 3);
        assert_eq!(reopened.stats().torn, None);
    }

    #[test]
    fn short_writes_are_retried_to_completion() {
        let io = FaultIo::with_plan(FaultPlan { short_write_cap: Some(3), ..Default::default() });
        let mut s = Store::create(io.clone(), manifest()).unwrap();
        s.append(1, 0, 0, b"a-long-enough-payload").unwrap();
        let back = Store::open(io).unwrap();
        assert_eq!(back.records().len(), 1);
        assert_eq!(back.records()[0].payload, b"a-long-enough-payload");
    }

    #[test]
    fn enospc_surfaces_as_io_error_and_recovery_cleans_up() {
        let io =
            FaultIo::with_plan(FaultPlan { enospc_after_bytes: Some(400), ..Default::default() });
        let mut s = Store::create(io.clone(), manifest()).unwrap();
        let mut failed = None;
        for r in 0..50u64 {
            if let Err(e) = s.append(1, r, r, &[0u8; 32]) {
                failed = Some((r, e));
                break;
            }
        }
        let (at, err) = failed.expect("the byte budget must eventually trip");
        assert!(matches!(err, StoreError::Io(ref e) if e.kind() == io::ErrorKind::StorageFull));
        io.restart();
        let back = Store::open(io).unwrap();
        assert_eq!(back.records().len() as u64, at, "all pre-ENOSPC records survive");
    }

    #[test]
    fn bit_flip_on_read_truncates_at_the_flipped_record() {
        let io = FaultIo::pristine();
        let mut s = Store::create(io.clone(), manifest()).unwrap();
        for r in 0..4u64 {
            s.append(1, r, r, &[r as u8; 16]).unwrap();
        }
        let record_len = s.journal_len() / 4;
        drop(s);
        // Flip a payload bit inside record 2 (silent media corruption).
        let files = io.files();
        let flipped = FaultIo::from_files(
            files,
            FaultPlan {
                flip_on_read: Some((
                    JOURNAL_FILE.to_string(),
                    2 * record_len + frame::HEADER_LEN as u64 + 3,
                    0x10,
                )),
                ..Default::default()
            },
        );
        let back = Store::open(flipped).unwrap();
        assert_eq!(back.records().len(), 2, "records before the flip survive");
        assert_eq!(back.stats().torn.as_deref(), Some("crc mismatch"));
    }

    #[test]
    fn open_refuses_non_store_and_wrong_schema() {
        assert!(matches!(Store::open(FaultIo::pristine()), Err(StoreError::Corrupt(_))));
        let io = FaultIo::pristine();
        let mut m = manifest();
        m.schema = "something-else/9".to_string();
        io.put(MANIFEST_FILE, serde_json::to_string(&m).unwrap().into_bytes());
        assert!(matches!(Store::open(io), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn create_refuses_to_clobber() {
        let io = FaultIo::pristine();
        let _ = Store::create(io.clone(), manifest()).unwrap();
        assert!(matches!(Store::create(io, manifest()), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn append_rejects_out_of_order_rounds() {
        let io = FaultIo::pristine();
        let mut s = Store::create(io, manifest()).unwrap();
        s.append(1, 5, 5, b"x").unwrap();
        assert!(matches!(s.append(1, 5, 5, b"y"), Err(StoreError::Corrupt(_))));
        assert!(matches!(s.append(1, 4, 4, b"y"), Err(StoreError::Corrupt(_))));
        s.append(1, 6, 6, b"z").unwrap();
    }
}
