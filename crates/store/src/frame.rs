//! CRC-framed journal records and the recovery scan.
//!
//! Wire layout of one record (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"DCJ1"
//!      4     1  kind   (1 = campaign round delta, 2 = fleet vehicle, ...)
//!      5     8  round  u64
//!     13     8  seq    u64
//!     21     4  len    u32, payload length
//!     25   len  payload
//!  25+len     4  crc32 (IEEE) over bytes [4 .. 25+len)  — kind through payload
//! ```
//!
//! `(round, seq)` must be strictly increasing across the journal
//! (lexicographically); the scan treats a violation like corruption and
//! stops there. The CRC excludes the magic (resynchronization marker, not
//! data) and covers everything else including the length field, so a
//! torn length cannot send the check off to read garbage as a trailer of
//! the right size.

/// Resynchronization marker opening every record.
pub const MAGIC: [u8; 4] = *b"DCJ1";
/// Fixed header size: magic + kind + round + seq + len.
pub const HEADER_LEN: usize = 4 + 1 + 8 + 8 + 4;
/// Trailing CRC size.
pub const TRAILER_LEN: usize = 4;
/// Upper bound on payload length the scan will accept. Journal payloads
/// are a few hundred bytes; anything past this is a corrupt length field,
/// not a record.
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// Full framed size of a record with an `n`-byte payload.
#[must_use]
pub const fn framed_len(n: usize) -> usize {
    HEADER_LEN + n + TRAILER_LEN
}

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` variant).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = (c >> 8) ^ CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize];
    }
    !c
}

/// Appends one framed record to `out`.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — journal payloads are
/// small by design and an oversized one is a caller bug, not a runtime
/// condition.
pub fn encode_record(kind: u8, round: u64, seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    assert!(payload.len() <= MAX_PAYLOAD as usize, "journal payload too large");
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(kind);
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start + MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Why the scan stopped before the end of the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than [`HEADER_LEN`] bytes remained — a torn header.
    TruncatedHeader,
    /// The magic marker is wrong — garbage or a bit-flipped header.
    BadMagic,
    /// The length field exceeds [`MAX_PAYLOAD`] — a corrupt length.
    OversizedLength,
    /// The payload + CRC extend past the end of the file — a torn body.
    TruncatedBody,
    /// The CRC over kind..payload does not match — a bit flip or torn
    /// trailer.
    CrcMismatch,
    /// `(round, seq)` did not increase — records out of order, which the
    /// append path never produces.
    NonMonotonic,
}

impl core::fmt::Display for TornReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            TornReason::TruncatedHeader => "truncated header",
            TornReason::BadMagic => "bad magic",
            TornReason::OversizedLength => "oversized length",
            TornReason::TruncatedBody => "truncated body",
            TornReason::CrcMismatch => "crc mismatch",
            TornReason::NonMonotonic => "non-monotonic (round, seq)",
        };
        f.write_str(s)
    }
}

/// One validated record recovered from a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRecord {
    /// Record kind tag.
    pub kind: u8,
    /// Round (campaign) or vehicle index (fleet).
    pub round: u64,
    /// Sequence number within the round.
    pub seq: u64,
    /// Decoded payload bytes.
    pub payload: Vec<u8>,
    /// Byte offset of the record's first byte in the journal.
    pub offset: u64,
}

/// The result of scan-validating a journal byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Every record up to (excluding) the first invalid byte.
    pub records: Vec<ScanRecord>,
    /// Length of the valid prefix: the journal should be truncated here.
    pub valid_len: u64,
    /// Why the scan stopped early, `None` if the whole stream validated.
    pub torn: Option<TornReason>,
}

/// Scan-validates `bytes` front to back, stopping at the first record
/// that is torn, corrupt, or out of order. Everything before the stop
/// offset is committed history; everything after is a casualty of the
/// crash (or tampering) and must be quarantined, never replayed.
#[must_use]
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut off = 0usize;
    let mut prev: Option<(u64, u64)> = None;
    let torn = loop {
        if off == bytes.len() {
            break None;
        }
        let rest = &bytes[off..];
        if rest.len() < HEADER_LEN {
            break Some(TornReason::TruncatedHeader);
        }
        if rest[..4] != MAGIC {
            break Some(TornReason::BadMagic);
        }
        let kind = rest[4];
        let round = u64::from_le_bytes(rest[5..13].try_into().unwrap());
        let seq = u64::from_le_bytes(rest[13..21].try_into().unwrap());
        let len = u32::from_le_bytes(rest[21..25].try_into().unwrap());
        if len > MAX_PAYLOAD {
            break Some(TornReason::OversizedLength);
        }
        let total = framed_len(len as usize);
        if rest.len() < total {
            break Some(TornReason::TruncatedBody);
        }
        let stored_crc = u32::from_le_bytes(rest[total - TRAILER_LEN..total].try_into().unwrap());
        if crc32(&rest[4..total - TRAILER_LEN]) != stored_crc {
            break Some(TornReason::CrcMismatch);
        }
        if prev.is_some_and(|p| (round, seq) <= p) {
            break Some(TornReason::NonMonotonic);
        }
        prev = Some((round, seq));
        records.push(ScanRecord {
            kind,
            round,
            seq,
            payload: rest[HEADER_LEN..HEADER_LEN + len as usize].to_vec(),
            offset: off as u64,
        });
        off += total;
    };
    ScanOutcome { records, valid_len: off as u64, torn }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(n: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n as u64 {
            encode_record(1, i, i, &i.to_le_bytes(), &mut out);
        }
        out
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE check value: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scan_round_trips_clean_journal() {
        let bytes = journal(5);
        let out = scan(&bytes);
        assert_eq!(out.torn, None);
        assert_eq!(out.valid_len, bytes.len() as u64);
        assert_eq!(out.records.len(), 5);
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.round, i as u64);
            assert_eq!(r.payload, (i as u64).to_le_bytes());
        }
    }

    #[test]
    fn scan_truncates_at_every_cut_of_last_record() {
        let keep = journal(3);
        let full = journal(4);
        // A cut exactly on the record boundary is a clean journal…
        let boundary = scan(&full[..keep.len()]);
        assert_eq!(boundary.torn, None);
        assert_eq!(boundary.records.len(), 3);
        // …every cut inside the final record is torn and truncates to it.
        for cut in keep.len() + 1..full.len() {
            let out = scan(&full[..cut]);
            assert_eq!(out.records.len(), 3, "cut at {cut}");
            assert_eq!(out.valid_len, keep.len() as u64, "cut at {cut}");
            assert!(out.torn.is_some(), "cut at {cut} must be reported torn");
        }
        assert_eq!(scan(&full).torn, None);
    }

    #[test]
    fn scan_rejects_any_single_byte_flip() {
        let bytes = journal(2);
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x40;
            let out = scan(&m);
            assert!(
                out.torn.is_some() || out.records.len() < 2,
                "flip at byte {i} survived the scan"
            );
        }
    }

    #[test]
    fn scan_rejects_out_of_order_records() {
        let mut out = Vec::new();
        encode_record(1, 5, 5, b"a", &mut out);
        let stop = out.len() as u64;
        encode_record(1, 4, 4, b"b", &mut out);
        let s = scan(&out);
        assert_eq!(s.torn, Some(TornReason::NonMonotonic));
        assert_eq!(s.valid_len, stop);
        assert_eq!(s.records.len(), 1);
    }

    #[test]
    fn scan_rejects_oversized_length_field() {
        let mut bytes = journal(1);
        // Corrupt the length field to a huge value and fix nothing else:
        // the scan must stop with OversizedLength, not try to allocate.
        bytes[21..25].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let s = scan(&bytes);
        assert_eq!(s.torn, Some(TornReason::OversizedLength));
        assert_eq!(s.valid_len, 0);
    }
}
