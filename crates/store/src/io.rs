//! Store I/O behind a trait, so the persistence layer is itself a
//! fault-injection target.
//!
//! [`FsIo`] is the real thing: files under a root directory, append
//! handles cached so fsync reaches the descriptor that wrote. [`FaultIo`]
//! is the adversary: an in-memory filesystem scripted by a [`FaultPlan`]
//! to tear writes at a byte budget, cap append sizes (short writes),
//! return ENOSPC, or flip a bit on read — everything a crash-matrix test
//! needs to prove recovery never loses a committed record nor resurrects
//! an uncommitted one.
//!
//! Paths are relative, `/`-separated, resolved against the store root.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// The I/O surface a [`crate::Store`] runs on.
///
/// `append` may write fewer bytes than offered (a short write); callers
/// loop. `write_atomic` is all-or-nothing with respect to readers.
pub trait StoreIo {
    /// Reads the whole file.
    fn read(&mut self, path: &str) -> io::Result<Vec<u8>>;
    /// Appends to the file (creating it), returning how many bytes were
    /// actually written — possibly fewer than offered.
    fn append(&mut self, path: &str, bytes: &[u8]) -> io::Result<usize>;
    /// Flushes the file's written data to durable storage.
    fn sync(&mut self, path: &str) -> io::Result<()>;
    /// Truncates the file to `len` bytes and syncs.
    fn truncate(&mut self, path: &str, len: u64) -> io::Result<()>;
    /// Replaces the file's content atomically (write-temp-then-rename on
    /// the real filesystem), creating parent directories as needed.
    fn write_atomic(&mut self, path: &str, bytes: &[u8]) -> io::Result<()>;
    /// Whether the file exists.
    fn exists(&mut self, path: &str) -> bool;
    /// Current length of the file in bytes.
    fn len(&mut self, path: &str) -> io::Result<u64>;
    /// Sorted file names (not paths) directly under `dir`; empty if the
    /// directory does not exist.
    fn list(&mut self, dir: &str) -> io::Result<Vec<String>>;
}

/// Real-filesystem [`StoreIo`] rooted at a directory.
#[derive(Debug)]
pub struct FsIo {
    root: PathBuf,
    /// Cached append handles: fsync must reach the fd that wrote, and
    /// reopening per append would defeat the kernel's write batching.
    appenders: HashMap<String, File>,
}

impl FsIo {
    /// Opens (creating) a store root.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FsIo { root, appenders: HashMap::new() })
    }

    /// The root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> PathBuf {
        let mut p = self.root.clone();
        p.extend(path.split('/'));
        p
    }
}

impl StoreIo for FsIo {
    fn read(&mut self, path: &str) -> io::Result<Vec<u8>> {
        fs::read(self.resolve(path))
    }

    fn append(&mut self, path: &str, bytes: &[u8]) -> io::Result<usize> {
        if !self.appenders.contains_key(path) {
            let full = self.resolve(path);
            if let Some(dir) = full.parent() {
                fs::create_dir_all(dir)?;
            }
            let f = OpenOptions::new().append(true).create(true).open(full)?;
            self.appenders.insert(path.to_string(), f);
        }
        let f = self.appenders.get_mut(path).expect("inserted above");
        f.write_all(bytes)?;
        Ok(bytes.len())
    }

    fn sync(&mut self, path: &str) -> io::Result<()> {
        match self.appenders.get_mut(path) {
            Some(f) => f.sync_all(),
            None => {
                let full = self.resolve(path);
                if full.exists() {
                    File::open(full)?.sync_all()
                } else {
                    Ok(())
                }
            }
        }
    }

    fn truncate(&mut self, path: &str, len: u64) -> io::Result<()> {
        // Drop the cached appender first: O_APPEND handles keep their own
        // position, and a stale one would write past the truncation point.
        self.appenders.remove(path);
        let f = OpenOptions::new().write(true).open(self.resolve(path))?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn write_atomic(&mut self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let full = self.resolve(path);
        if let Some(dir) = full.parent() {
            fs::create_dir_all(dir)?;
        }
        crate::atomic::write_atomic(&full, bytes)
    }

    fn exists(&mut self, path: &str) -> bool {
        self.resolve(path).exists()
    }

    fn len(&mut self, path: &str) -> io::Result<u64> {
        Ok(fs::metadata(self.resolve(path))?.len())
    }

    fn list(&mut self, dir: &str) -> io::Result<Vec<String>> {
        let full = self.resolve(dir);
        if !full.is_dir() {
            return Ok(Vec::new());
        }
        let mut names: Vec<String> = fs::read_dir(full)?
            .filter_map(Result::ok)
            .filter(|e| e.path().is_file())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        Ok(names)
    }
}

/// Scripted misbehaviour for [`FaultIo`]. All byte budgets count the
/// bytes *persisted by appends* since construction.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// After this many appended bytes, the "process dies": the append that
    /// crosses the budget persists only the bytes up to it (a torn write)
    /// and every subsequent operation fails. This is the crash-matrix
    /// knob: sweeping it across a record's framed length cuts the journal
    /// at every byte boundary.
    pub crash_after_bytes: Option<u64>,
    /// Appends persist at most this many bytes per call (short writes);
    /// the caller's retry loop must cope.
    pub short_write_cap: Option<usize>,
    /// After this many appended bytes, appends fail with
    /// [`io::ErrorKind::StorageFull`] without persisting anything.
    pub enospc_after_bytes: Option<u64>,
    /// `(path, byte offset, xor mask)`: reads of `path` return the byte at
    /// `offset` flipped — silent media corruption.
    pub flip_on_read: Option<(String, u64, u8)>,
    /// The next atomic write dies *before* its rename: nothing is
    /// persisted and the process is dead afterwards — a crash between
    /// writing the temp file and committing it.
    pub crash_on_atomic: bool,
}

#[derive(Debug, Default)]
struct FaultState {
    files: BTreeMap<String, Vec<u8>>,
    plan: FaultPlan,
    appended: u64,
    crashed: bool,
    syncs: u64,
}

/// In-memory fault-injecting [`StoreIo`]. Cloning shares the underlying
/// state, so a test can keep a handle to inspect (or corrupt) the "disk"
/// while the store owns another.
#[derive(Debug, Clone, Default)]
pub struct FaultIo {
    inner: Rc<RefCell<FaultState>>,
}

impl FaultIo {
    /// A pristine in-memory filesystem with no scripted faults.
    #[must_use]
    pub fn pristine() -> Self {
        FaultIo::default()
    }

    /// An in-memory filesystem misbehaving per `plan`.
    #[must_use]
    pub fn with_plan(plan: FaultPlan) -> Self {
        let io = FaultIo::default();
        io.inner.borrow_mut().plan = plan;
        io
    }

    /// Seeds the filesystem from `(path, bytes)` pairs.
    #[must_use]
    pub fn from_files(files: impl IntoIterator<Item = (String, Vec<u8>)>, plan: FaultPlan) -> Self {
        let io = FaultIo::with_plan(plan);
        io.inner.borrow_mut().files = files.into_iter().collect();
        io
    }

    /// Snapshot of every file — the bytes a post-crash process would find.
    #[must_use]
    pub fn files(&self) -> BTreeMap<String, Vec<u8>> {
        self.inner.borrow().files.clone()
    }

    /// Raw bytes of one file, if present.
    #[must_use]
    pub fn file(&self, path: &str) -> Option<Vec<u8>> {
        self.inner.borrow().files.get(path).cloned()
    }

    /// Overwrites one file directly (test-side tampering).
    pub fn put(&self, path: &str, bytes: Vec<u8>) {
        self.inner.borrow_mut().files.insert(path.to_string(), bytes);
    }

    /// Whether the scripted crash has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.inner.borrow().crashed
    }

    /// Total bytes persisted by appends.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.inner.borrow().appended
    }

    /// Number of sync calls observed.
    #[must_use]
    pub fn syncs(&self) -> u64 {
        self.inner.borrow().syncs
    }

    /// Clears the crash flag and budgets — "restart the process" on the
    /// same surviving disk image.
    pub fn restart(&self) {
        let mut s = self.inner.borrow_mut();
        s.crashed = false;
        s.plan = FaultPlan::default();
    }

    fn dead() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "simulated crash: process is dead")
    }
}

impl StoreIo for FaultIo {
    fn read(&mut self, path: &str) -> io::Result<Vec<u8>> {
        let s = self.inner.borrow();
        if s.crashed {
            return Err(Self::dead());
        }
        let mut bytes = s
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        if let Some((p, off, mask)) = &s.plan.flip_on_read {
            if p == path {
                if let Some(b) = bytes.get_mut(*off as usize) {
                    *b ^= mask;
                }
            }
        }
        Ok(bytes)
    }

    fn append(&mut self, path: &str, bytes: &[u8]) -> io::Result<usize> {
        let mut s = self.inner.borrow_mut();
        if s.crashed {
            return Err(Self::dead());
        }
        if let Some(budget) = s.plan.enospc_after_bytes {
            if s.appended + bytes.len() as u64 > budget {
                return Err(io::Error::new(io::ErrorKind::StorageFull, "simulated ENOSPC"));
            }
        }
        let mut n = bytes.len();
        let mut dies = false;
        if let Some(budget) = s.plan.crash_after_bytes {
            let room = budget.saturating_sub(s.appended);
            if (room as usize) < n {
                n = room as usize;
                dies = true;
            }
        }
        if let Some(cap) = s.plan.short_write_cap {
            n = n.min(cap);
        }
        s.files.entry(path.to_string()).or_default().extend_from_slice(&bytes[..n]);
        s.appended += n as u64;
        if dies {
            s.crashed = true;
            return Err(Self::dead());
        }
        Ok(n)
    }

    fn sync(&mut self, path: &str) -> io::Result<()> {
        let _ = path;
        let mut s = self.inner.borrow_mut();
        if s.crashed {
            return Err(Self::dead());
        }
        s.syncs += 1;
        Ok(())
    }

    fn truncate(&mut self, path: &str, len: u64) -> io::Result<()> {
        let mut s = self.inner.borrow_mut();
        if s.crashed {
            return Err(Self::dead());
        }
        match s.files.get_mut(path) {
            Some(f) => {
                f.truncate(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, path.to_string())),
        }
    }

    fn write_atomic(&mut self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.inner.borrow_mut();
        if s.crashed {
            return Err(Self::dead());
        }
        // Atomic writes are all-or-nothing: a scripted crash here means
        // the rename never happened and the old content survives
        // untouched. The append byte budgets deliberately do not apply —
        // they frame the *journal's* torn-write matrix.
        if s.plan.crash_on_atomic {
            s.crashed = true;
            return Err(Self::dead());
        }
        s.files.insert(path.to_string(), bytes.to_vec());
        Ok(())
    }

    fn exists(&mut self, path: &str) -> bool {
        self.inner.borrow().files.contains_key(path)
    }

    fn len(&mut self, path: &str) -> io::Result<u64> {
        let s = self.inner.borrow();
        s.files
            .get(path)
            .map(|f| f.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))
    }

    fn list(&mut self, dir: &str) -> io::Result<Vec<String>> {
        let s = self.inner.borrow();
        let prefix = format!("{dir}/");
        let mut names: Vec<String> = s
            .files
            .keys()
            .filter_map(|k| k.strip_prefix(&prefix))
            .filter(|rest| !rest.contains('/'))
            .map(String::from)
            .collect();
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_io_short_writes_are_capped() {
        let mut io =
            FaultIo::with_plan(FaultPlan { short_write_cap: Some(3), ..Default::default() });
        assert_eq!(io.append("j", b"abcdef").unwrap(), 3);
        assert_eq!(io.file("j").unwrap(), b"abc");
        assert_eq!(io.append("j", b"def").unwrap(), 3);
        assert_eq!(io.file("j").unwrap(), b"abcdef");
    }

    #[test]
    fn fault_io_crash_tears_the_write_and_kills_the_process() {
        let mut io =
            FaultIo::with_plan(FaultPlan { crash_after_bytes: Some(4), ..Default::default() });
        assert!(io.append("j", b"abcdef").is_err());
        assert!(io.crashed());
        assert_eq!(io.file("j").unwrap(), b"abcd", "prefix up to the budget persists");
        assert!(io.append("j", b"x").is_err(), "dead processes do not write");
        io.restart();
        assert_eq!(io.append("j", b"x").unwrap(), 1);
    }

    #[test]
    fn fault_io_enospc_persists_nothing() {
        let mut io =
            FaultIo::with_plan(FaultPlan { enospc_after_bytes: Some(2), ..Default::default() });
        assert_eq!(io.append("j", b"ab").unwrap(), 2);
        let e = io.append("j", b"c").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        assert_eq!(io.file("j").unwrap(), b"ab");
    }

    #[test]
    fn fault_io_flips_a_bit_on_read() {
        let io = FaultIo::with_plan(FaultPlan {
            flip_on_read: Some(("j".into(), 1, 0x01)),
            ..Default::default()
        });
        io.put("j", vec![0xAA, 0xBB, 0xCC]);
        let mut h = io.clone();
        assert_eq!(h.read("j").unwrap(), vec![0xAA, 0xBA, 0xCC]);
        assert_eq!(io.file("j").unwrap(), vec![0xAA, 0xBB, 0xCC], "media itself unchanged");
    }

    #[test]
    fn fs_io_appends_lists_and_truncates() {
        let root = std::env::temp_dir().join("decos_store_fsio_test");
        let _ = fs::remove_dir_all(&root);
        let mut io = FsIo::new(&root).unwrap();
        assert_eq!(io.append("journal.log", b"hello").unwrap(), 5);
        io.sync("journal.log").unwrap();
        assert_eq!(io.read("journal.log").unwrap(), b"hello");
        io.write_atomic("snapshots/snap-1.json", b"{}").unwrap();
        assert_eq!(io.list("snapshots").unwrap(), vec!["snap-1.json".to_string()]);
        io.truncate("journal.log", 2).unwrap();
        assert_eq!(io.read("journal.log").unwrap(), b"he");
        assert_eq!(io.append("journal.log", b"y").unwrap(), 1);
        assert_eq!(io.read("journal.log").unwrap(), b"hey", "append lands after truncation point");
        fs::remove_dir_all(&root).unwrap();
    }
}
