//! Atomic file replacement: write-to-temp, fsync, rename.
//!
//! Every artifact emitter in the workspace (BENCH files, flight-recorder
//! dumps, trace reports, store manifests and snapshots) routes through
//! [`write_atomic`] so a crash mid-dump can never leave a truncated or
//! half-written file where a reader expects a complete one. The rename is
//! the commit point: readers either see the old content or the new, never
//! a prefix.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: the content lands in a `.tmp`
/// sibling first, is flushed and fsynced, and only then renamed over the
/// destination. On any error the destination is untouched (a stale `.tmp`
/// may remain; it is overwritten by the next attempt).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself. Directory fsync is best-effort: some
    // platforms refuse to open directories for writing, and the rename is
    // already atomic with respect to readers.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The temporary sibling used by [`write_atomic`]: same directory (renames
/// across filesystems are not atomic), `.tmp` appended to the full file
/// name so `x.json` and `x` never collide on the same temp name.
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join("decos_store_atomic_test");
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("artifact.json");
        write_atomic(&target, b"first").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"first");
        write_atomic(&target, b"second-longer").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"second-longer");
        assert!(
            !dir.join("artifact.json.tmp").exists(),
            "temp file must not survive a successful write"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
