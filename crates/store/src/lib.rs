//! Crash-safe event-sourced campaign store.
//!
//! Long-horizon fleet histories — the NFF ratios, wearout replacement
//! waves and FRU-return Paretos the paper's economics stand on — outlive
//! any single process. This crate makes them a durable artifact: an
//! append-only journal of per-round deltas ([`codec::RoundDelta`]) framed
//! as CRC-checked binary records ([`frame`]), plus periodic full snapshots
//! (opaque JSON documents written atomically), under a small manifest that
//! pins the experiment the store belongs to.
//!
//! Recovery is robust by construction: [`Store::open`] scan-validates the
//! journal, truncates at the first torn or CRC-failing record, and
//! quarantines the severed tail to a sidecar file instead of deleting it.
//! A committed (synced) record is never lost; an uncommitted (torn) one is
//! never resurrected.
//!
//! The persistence layer is itself a fault-injection target, extending the
//! "subject the diagnostic path to its own fault model" philosophy to
//! storage: all I/O goes through the [`io::StoreIo`] trait, and
//! [`io::FaultIo`] simulates short writes, crash-at-offset, bit flips and
//! ENOSPC so crash-matrix tests can kill the writer at every byte boundary.

pub mod atomic;
pub mod codec;
pub mod frame;
pub mod io;
pub mod store;

pub use atomic::write_atomic;
pub use codec::{CodecError, RoundDelta, ROUND_DELTA_KIND, VEHICLE_KIND};
pub use frame::{scan, ScanOutcome, ScanRecord, TornReason};
pub use io::{FaultIo, FaultPlan, FsIo, StoreIo};
pub use store::{
    fnv1a, fnv1a_extend, Manifest, Store, StoreError, StoreStats, JOURNAL_FILE, MANIFEST_FILE,
    QUARANTINE_DIR, SNAP_DIR, STORE_SCHEMA,
};
