//! Self-check: every spec this repository ships — the Fig. 10 reference
//! cluster, the avionics cluster, and the campaign variants the examples
//! drive — must analyze without error-severity diagnostics; seeded
//! mutations must each produce their specific diagnostic code.

use decos::prelude::*;
use decos_analyzer::{analyze, DiagCode, ExperimentSpec, ScheduleSpec, Severity};
use decos_platform::{avionics, fig10, NodeId};

/// The horizon the examples and the fleet default use.
const ROUNDS: u64 = 4000;

fn assert_clean(name: &str, exp: &ExperimentSpec<'_>) {
    let report = analyze(exp);
    assert!(!report.has_errors(), "{name} should have no errors:\n{report}");
}

#[test]
fn fig10_reference_is_spotless() {
    let spec = fig10::reference_spec();
    let mut exp = ExperimentSpec::new(&spec);
    exp.rounds = ROUNDS;
    let report = analyze(&exp);
    assert!(!report.has_errors(), "{report}");
    assert_eq!(report.count_severity(Severity::Warning), 0, "{report}");
}

#[test]
fn avionics_has_no_errors() {
    let spec = avionics::avionics_spec();
    let mut exp = ExperimentSpec::new(&spec);
    exp.rounds = ROUNDS;
    let report = analyze(&exp);
    assert!(!report.has_errors(), "{report}");
    // The F1/F2/F3 replicas sit on adjacent forward LRMs — the analyzer is
    // expected to flag the tight spatial grouping, as a warning only.
    assert!(report.contains(DiagCode::TmrTriadSpatiallyClose), "{report}");
}

#[test]
fn example_campaigns_have_no_errors() {
    use decos::faults::campaign;
    let spec = fig10::reference_spec();
    let cases: Vec<(&str, Vec<FaultSpec>)> = vec![
        ("external", campaign::external_environment(&spec, 2000.0)),
        ("connector", campaign::connector_campaign(NodeId(2), 2000.0)),
        ("wearout", campaign::wearout_campaign(NodeId(1), 500.0, 100_000.0)),
        ("internal", campaign::internal_degradation_campaign(NodeId(2))),
        ("software", campaign::software_campaign(fig10::jobs::A3, true)),
        (
            "sensor",
            campaign::sensor_campaign(fig10::jobs::A1, FaultKind::SensorStuck { value: 0.4 }),
        ),
    ];
    for (name, faults) in &cases {
        assert_clean(name, &ExperimentSpec::with_campaign(&spec, faults, 10.0, ROUNDS));
    }
}

#[test]
fn deliberate_misconfiguration_warns_but_runs() {
    let (spec, faults) =
        decos::faults::campaign::misconfiguration_campaign(fig10::reference_spec(), 4);
    let report = analyze(&ExperimentSpec::with_campaign(&spec, &faults, 10.0, ROUNDS));
    assert!(!report.has_errors(), "deliberate defects must not be errors:\n{report}");
    // ... and the ground-truth fault is consistent with the defect, so the
    // missing-defect warning must NOT fire.
    assert!(!report.contains(DiagCode::MisconfigTruthWithoutDefect), "{report}");
}

// ---------------------------------------------------------------------------
// Seeded mutations: each must fire its specific code.
// ---------------------------------------------------------------------------

#[test]
fn mutation_shared_fru_triad_fires_da010() {
    let mut spec = fig10::reference_spec();
    // Move replica S2 onto S1's component: two replicas on one FRU.
    spec.jobs.iter_mut().find(|j| j.id == fig10::jobs::S2).unwrap().host = NodeId(0);
    let report = analyze(&ExperimentSpec::new(&spec));
    assert!(report.contains(DiagCode::TmrTriadSharedFru), "{report}");
    assert!(report.has_errors());
}

#[test]
fn mutation_starved_pattern_fires_da020() {
    let spec = fig10::reference_spec();
    let mut exp = ExperimentSpec::new(&spec);
    // The configuration pattern needs overflow_min_windows rounds of
    // evidence; an impossible threshold starves the JobBorderline class.
    exp.ona.overflow_min_windows = u64::MAX;
    exp.rounds = ROUNDS;
    let report = analyze(&exp);
    assert!(report.contains(DiagCode::UncoveredFaultClass), "{report}");
    assert!(report.contains(DiagCode::OnaPatternUnavailable), "{report}");
}

#[test]
fn mutation_double_booked_slot_fires_da001() {
    let spec = fig10::reference_spec();
    let mut exp = ExperimentSpec::new(&spec);
    let mut sched = ScheduleSpec::derived(&spec);
    // Claim slot 0 for component 1 as well: two owners, one slot.
    sched.claims.push((0, NodeId(1)));
    exp.schedule = sched;
    let report = analyze(&exp);
    assert!(report.contains(DiagCode::SlotCollision), "{report}");
    assert!(report.has_errors());
}

#[test]
fn mutation_unknown_target_fires_da040() {
    let spec = fig10::reference_spec();
    let faults = vec![FaultSpec {
        id: 1,
        kind: FaultKind::CosmicRaySeu { rate_per_hour: 50.0 },
        target: FruRef::Component(NodeId(17)),
        onset: decos::sim::SimTime::ZERO,
    }];
    let report = analyze(&ExperimentSpec::with_campaign(&spec, &faults, 1.0, ROUNDS));
    assert!(report.contains(DiagCode::UnknownFaultTarget), "{report}");
    assert!(report.has_errors());
}

#[test]
fn mutation_onset_beyond_horizon_fires_da041() {
    let spec = fig10::reference_spec();
    let faults = vec![FaultSpec {
        id: 1,
        kind: FaultKind::SensorDead,
        target: FruRef::Job(fig10::jobs::A1),
        onset: decos::sim::SimTime::from_secs(3600),
    }];
    // 4000 rounds x 4 ms = 16 s << the one-hour onset.
    let report = analyze(&ExperimentSpec::with_campaign(&spec, &faults, 1.0, ROUNDS));
    assert!(report.contains(DiagCode::OnsetBeyondHorizon), "{report}");
    assert!(report.has_errors());
}

#[test]
fn mutation_zero_diag_capacity_fires_da070() {
    let mut spec = fig10::reference_spec();
    spec.diag_net.capacity_per_round = 0;
    let report = analyze(&ExperimentSpec::new(&spec));
    assert!(report.contains(DiagCode::InvalidDiagNetConfig), "{report}");
    assert!(report.has_errors());
}

#[test]
fn mutation_diag_delay_beyond_horizon_fires_da072() {
    let spec = fig10::reference_spec();
    let faults = decos::faults::campaign::diag_degradation_campaign(0.0, 0.0, 200);
    // 100 rounds of horizon, 200 rounds of delay: nothing ever arrives.
    let report = analyze(&ExperimentSpec::with_campaign(&spec, &faults, 10.0, 100));
    assert!(report.contains(DiagCode::DiagDelayExceedsHorizon), "{report}");
    assert!(report.has_errors());
}

#[test]
fn quiet_babbler_fires_da073_info_only() {
    let spec = fig10::reference_spec();
    // Four forged frames per round is far under the rate-screen ceiling:
    // the screen will never flag this observer, which is worth knowing but
    // is not a defect of the experiment.
    let faults = decos::faults::campaign::babbling_observer_campaign(NodeId(3), 4);
    let report = analyze(&ExperimentSpec::with_campaign(&spec, &faults, 10.0, ROUNDS));
    assert!(!report.has_errors(), "{report}");
    assert!(report.contains(DiagCode::DiagBabbleUndetectable), "{report}");
}

#[test]
fn mutation_dominating_crash_fires_da071() {
    let spec = fig10::reference_spec();
    // One crash per accelerated second with one-second outages: the
    // diagnostic component is down about as often as it is up.
    let faults = decos::faults::campaign::diag_crash_campaign(NodeId(0), 3600.0, 1000.0);
    let report = analyze(&ExperimentSpec::with_campaign(&spec, &faults, 10.0, ROUNDS));
    assert!(report.contains(DiagCode::DiagCrashDominatesHorizon), "{report}");
}

#[test]
fn degradation_campaigns_analyze_clean() {
    use decos::faults::campaign;
    let spec = fig10::reference_spec();
    for (name, faults) in [
        ("loss", campaign::diag_degradation_campaign(0.5, 0.0, 0)),
        ("corruption", campaign::diag_degradation_campaign(0.0, 0.5, 0)),
        ("total-loss", campaign::diag_degradation_campaign(1.0, 0.0, 0)),
    ] {
        assert_clean(name, &ExperimentSpec::with_campaign(&spec, &faults, 10.0, ROUNDS));
    }
}

#[test]
fn runner_refuses_what_the_analyzer_rejects() {
    // The same broken campaign through the public entry point: the run
    // must not start, and the full report must come back.
    let c = Campaign::reference(
        vec![FaultSpec {
            id: 1,
            kind: FaultKind::CosmicRaySeu { rate_per_hour: 50.0 },
            target: FruRef::Component(NodeId(17)),
            onset: decos::sim::SimTime::ZERO,
        }],
        1.0,
        100,
        3,
    );
    match run_campaign(&c) {
        Err(CampaignError::Rejected(report)) => {
            assert!(report.contains(DiagCode::UnknownFaultTarget), "{report}");
        }
        other => panic!("expected analyzer rejection, got {other:?}"),
    }
}
