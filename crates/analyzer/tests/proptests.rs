//! Properties of the analyzer contract:
//!
//! 1. randomly parameterized *valid* experiments analyze without errors;
//! 2. random single-field corruptions are either caught by the analyzer or
//!    the experiment still simulates deterministically — the runner never
//!    panics on an analyzer-clean input.

use decos::prelude::*;
use decos_analyzer::{analyze, ExperimentSpec};
use decos_platform::{fig10, NodeId};
use decos_sim::time::SimTime;
use proptest::prelude::*;

/// A structurally valid single-fault campaign over the reference cluster.
fn valid_campaign(
    kind_sel: u8,
    node: u16,
    rate: f64,
    accel: f64,
    rounds: u64,
    seed: u64,
) -> Campaign {
    let node = NodeId(node % 4);
    let job = [fig10::jobs::A1, fig10::jobs::A3, fig10::jobs::C1][(kind_sel % 3) as usize];
    let kind_sel = kind_sel % 5;
    let fault = match kind_sel {
        0 => FaultSpec {
            id: 1,
            kind: FaultKind::ConnectorIntermittent { rate_per_hour: rate, duration_ms: 5.0 },
            target: FruRef::Component(node),
            onset: SimTime::ZERO,
        },
        1 => FaultSpec {
            id: 1,
            kind: FaultKind::CosmicRaySeu { rate_per_hour: rate },
            target: FruRef::Component(node),
            onset: SimTime::ZERO,
        },
        2 => FaultSpec {
            id: 1,
            kind: FaultKind::SolderJointCrack {
                base_rate_per_hour: rate,
                growth_per_hour: rate * 10.0,
                duration_ms: 4.0,
            },
            target: FruRef::Component(node),
            onset: SimTime::ZERO,
        },
        3 => FaultSpec {
            id: 1,
            kind: FaultKind::SensorStuck { value: 0.3 },
            target: FruRef::Job(job),
            onset: SimTime::ZERO,
        },
        _ => FaultSpec {
            id: 1,
            kind: FaultKind::Heisenbug { prob_per_dispatch: 0.05, drop: true, wrong_value: 0.9 },
            target: FruRef::Job(job),
            onset: SimTime::ZERO,
        },
    };
    Campaign::reference(vec![fault], accel, rounds, seed)
}

proptest! {
    #[test]
    fn valid_experiments_analyze_clean(
        kind_sel in 0u8..5,
        node in 0u16..4,
        rate in 10.0f64..3000.0,
        accel in 1.0f64..50.0,
        rounds in 300u64..2000,
        seed in 0u64..1_000_000,
    ) {
        let c = valid_campaign(kind_sel, node, rate, accel, rounds, seed);
        let exp = ExperimentSpec::with_campaign(&c.spec, &c.faults, c.accel, c.rounds);
        let report = analyze(&exp);
        prop_assert!(!report.has_errors(), "valid experiment rejected:\n{report}");
    }

    #[test]
    fn corruptions_are_caught_or_simulate(
        kind_sel in 0u8..5,
        node in 0u16..4,
        rate in 10.0f64..3000.0,
        seed in 0u64..1_000_000,
        corruption in 0u8..7,
    ) {
        // Small horizon: this property runs the full simulator whenever the
        // corrupted experiment still passes the analyzer.
        let mut c = valid_campaign(kind_sel, node, rate, 10.0, 150, seed);
        match corruption {
            // Fault aimed at a component outside the cluster.
            0 => c.faults[0].target = FruRef::Component(NodeId(99)),
            // Onset far beyond the horizon.
            1 => c.faults[0].onset = SimTime::from_secs(86_400),
            // Non-finite acceleration.
            2 => c.accel = f64::NAN,
            // Negative acceleration.
            3 => c.accel = -4.0,
            // A job moved onto a component that does not exist.
            4 => c.spec.jobs[0].host = NodeId(40),
            // Duplicate fault id.
            5 => {
                let mut f = c.faults[0].clone();
                f.onset = SimTime::from_millis(50);
                c.faults.push(f);
            }
            // No corruption at all: the control arm.
            _ => {}
        }
        match run_campaign(&c) {
            // Analyzer-clean input: the runner must have finished without
            // panicking, and deterministically so.
            Ok(out) => {
                let again = run_campaign(&c);
                prop_assert!(again.is_ok());
                let again = again.unwrap();
                prop_assert_eq!(out.report, again.report);
                prop_assert_eq!(out.episodes, again.episodes);
            }
            // Caught: the rejection must actually carry error findings.
            Err(CampaignError::Rejected(report)) => {
                prop_assert!(report.has_errors(), "rejected without errors:\n{report}");
                prop_assert!(corruption < 6, "control arm must not be rejected:\n{report}");
            }
            Err(CampaignError::Spec(e)) => {
                prop_assert!(corruption == 4, "unexpected spec error {e:?}");
            }
        }
    }
}
