//! The analysis passes.
//!
//! Each pass appends to one [`AnalysisReport`]; none stops at the first
//! finding. Severity policy: a finding is an **error** only if simulating
//! would crash, hang, or measure something structurally different from
//! what the experiment claims to measure. Deliberate degradation — the
//! configuration defects and campaign faults that *are* the experiment's
//! ground truth — produces warnings at most, otherwise fault-injection
//! experiments could never run.

use crate::coverage::{unavailability, PATTERN_CATALOG};
use crate::experiment::ExperimentSpec;
use crate::report::{AnalysisReport, DiagCode, Diagnostic, Severity, Subject};
use decos_faults::{FaultClass, FaultKind, FaultSpec, FruRef};
use decos_platform::{ClusterSpec, Criticality, JobBehavior, JobSpec, SpecError};
use decos_vnet::VnetConfig;
use std::collections::{BTreeMap, BTreeSet};

/// Statically analyzes a complete experiment, returning every finding.
///
/// Runs all passes — structural, schedule, bandwidth, TMR, ONA coverage,
/// trust totality, campaign validity, configuration-defect cross-checks —
/// and returns the findings sorted errors-first. The experiment is safe to
/// simulate iff [`AnalysisReport::has_errors`] is `false`.
#[must_use]
pub fn analyze(exp: &ExperimentSpec<'_>) -> AnalysisReport {
    let mut r = AnalysisReport::new();
    check_structure(exp.cluster, &mut r);
    check_schedule(exp, &mut r);
    check_bandwidth(exp, &mut r);
    check_tmr(exp, &mut r);
    check_coverage(exp, &mut r);
    check_trust(exp, &mut r);
    check_campaign(exp, &mut r);
    check_diag_path(exp, &mut r);
    check_config_defects(exp, &mut r);
    check_diagnosability(exp, &mut r);
    r.finish();
    r
}

/// DA080–DA082: bounded n-diagnosability over the campaign scope.
///
/// Runs only for bounded campaign experiments (`rounds > 0`, at least one
/// fault): derives each distinct `(kind, FRU)` hypothesis' n-round symptom
/// signature and lints pairs the maintenance advisor could confuse into a
/// *wrong* action (observation-equivalent pairs differing in FRU or
/// class), hypotheses that are invisible to the ONA bank, and hypotheses
/// whose earliest possible conviction lies beyond the horizon. All
/// warn-level: such campaigns measure something (often deliberately — an
/// ambiguity experiment is still an experiment), they just cannot support
/// the paper's pinned-FRU maintenance claim.
fn check_diagnosability(exp: &ExperimentSpec<'_>, r: &mut AnalysisReport) {
    if exp.rounds == 0 || exp.faults.is_empty() {
        return;
    }
    let hypotheses = crate::diagnosability::campaign_hypotheses(exp);
    let report = crate::diagnosability::analyze_diagnosability(exp, hypotheses, exp.rounds);
    let subject = |h: &crate::diagnosability::Hypothesis| match h.fru {
        FruRef::Component(n) => Subject::Component(n),
        FruRef::Job(j) => Subject::Job(j),
    };
    for i in report.invisible() {
        let h = &report.hypotheses[i];
        // A diagnostic-path fault is *supposed* to be invisible to the
        // application-level observers; DA070-DA073 own its lints.
        let severity = if h.kind.is_diag_path() { Severity::Info } else { Severity::Warning };
        let mut d = Diagnostic::new(
            DiagCode::FaultClassInvisibleToOna,
            severity,
            format!(
                "{} reaches no ONA pattern within {} rounds: invisible to the diagnostic \
                 architecture",
                h.label(),
                exp.rounds
            ),
        )
        .with(subject(h))
        .with(Subject::Class(h.class()))
        .suggest(if h.kind.is_diag_path() {
            "expected for diagnostic-path faults; the DA07x lints cover the observer itself"
        } else {
            "give the target a TDMA slot and check the ONA parameters/horizon cover the \
             kind's patterns"
        });
        if let Some(id) = h.fault_id {
            d = d.with(Subject::Fault(id));
        }
        r.push(d);
    }
    for p in report.ambiguous() {
        let (a, b) = (&report.hypotheses[p.a], &report.hypotheses[p.b]);
        // Same FRU + same class ⇒ same prescribed action: the ambiguity
        // cannot misdirect maintenance, so it is not worth a warning.
        if crate::diagnosability::maintenance_equivalent(a, b) {
            continue;
        }
        let witness = match &p.verdict {
            crate::diagnosability::Verdict::Ambiguous { witness } => {
                witness.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
            }
            _ => unreachable!("ambiguous() yields only ambiguous verdicts"),
        };
        let mut d = Diagnostic::new(
            DiagCode::FaultPairIndistinguishable,
            Severity::Warning,
            format!(
                "{} and {} are observation-equivalent within {} rounds; witness: [{}]",
                a.label(),
                b.label(),
                exp.rounds,
                witness
            ),
        )
        .with(subject(a))
        .with(subject(b))
        .suggest(
            "the advisor cannot pin the FRU/action for this pair; separate the targets \
             spatially, enable a discriminating ONA, or accept the ambiguity as ground truth",
        );
        for h in [a, b] {
            if let Some(id) = h.fault_id {
                d = d.with(Subject::Fault(id));
            }
        }
        r.push(d);
    }
    for (i, sig) in report.signatures.iter().enumerate() {
        if sig.is_empty() {
            continue;
        }
        let h = &report.hypotheses[i];
        if let Some(conviction) = sig.conviction_round(exp.advisor.min_evidence) {
            if conviction > exp.rounds {
                let mut d = Diagnostic::new(
                    DiagCode::HorizonTooShortForConviction,
                    Severity::Warning,
                    format!(
                        "{} is observable but cannot accumulate conviction evidence before \
                         round {conviction}; the horizon is {} rounds",
                        h.label(),
                        exp.rounds
                    ),
                )
                .with(subject(h))
                .suggest(
                    "extend the horizon past the earliest conviction round (cf. the \
                     DA071/DA072 horizon lints for the diagnostic path)",
                );
                if let Some(id) = h.fault_id {
                    d = d.with(Subject::Fault(id));
                }
                r.push(d);
            }
        }
    }
}

/// Maps the collected structural spec errors onto DA06x diagnostics.
fn check_structure(cluster: &ClusterSpec, r: &mut AnalysisReport) {
    for e in cluster.structural_errors() {
        let d = match e {
            SpecError::NonContiguousNodeIds => Diagnostic::new(
                DiagCode::NonContiguousNodeIds,
                Severity::Error,
                "component node ids must be exactly 0..n in declaration order",
            )
            .suggest("sort the component list by node id and renumber gaps away"),
            SpecError::TooManyComponents => Diagnostic::new(
                DiagCode::TooManyComponents,
                Severity::Error,
                format!(
                    "{} components exceed the 64-bit membership vector",
                    cluster.components.len()
                ),
            )
            .suggest("split the system into multiple clusters of at most 64 components"),
            SpecError::UnknownHost(j) => Diagnostic::new(
                DiagCode::UnknownHost,
                Severity::Error,
                "job is hosted on a component that does not exist",
            )
            .with(Subject::Job(j))
            .suggest("add the component or fix the job's host field"),
            SpecError::UnknownDas(j) => Diagnostic::new(
                DiagCode::UnknownDas,
                Severity::Error,
                "job references a DAS that is not declared",
            )
            .with(Subject::Job(j))
            .suggest("declare the DAS in ClusterSpec::dases"),
            SpecError::UnknownVnet(j) => Diagnostic::new(
                DiagCode::UnknownVnet,
                Severity::Error,
                "job uses a virtual network that is not configured",
            )
            .with(Subject::Job(j))
            .suggest("add a VnetConfig for the network or fix the job's behavior"),
            SpecError::DuplicatePort(p) => Diagnostic::new(
                DiagCode::DuplicatePort,
                Severity::Error,
                "two jobs publish on the same output port",
            )
            .with(Subject::Port(p))
            .suggest("give every producing job a unique port id"),
            SpecError::CriticalityMismatch(j) => Diagnostic::new(
                DiagCode::CriticalityMismatch,
                Severity::Error,
                "job criticality disagrees with its DAS",
            )
            .with(Subject::Job(j))
            .suggest("jobs inherit criticality from their DAS; align the two"),
            SpecError::DuplicateJob(j) => {
                Diagnostic::new(DiagCode::DuplicateJob, Severity::Error, "two jobs share one id")
                    .with(Subject::Job(j))
                    .suggest("job ids are FRU handles and must be unique")
            }
            SpecError::InvalidDiagNet => Diagnostic::new(
                DiagCode::InvalidDiagNetConfig,
                Severity::Error,
                format!(
                    "diagnostic network dimensioning is unusable \
                     (capacity {}/round, queue depth {})",
                    cluster.diag_net.capacity_per_round, cluster.diag_net.queue_depth
                ),
            )
            .suggest(
                "give the diagnostic vnet a positive capacity and a queue \
                 at least one round deep",
            ),
        };
        r.push(d);
    }
}

/// Slot-table checks: collisions, gaps, unknown owners, silent components.
fn check_schedule(exp: &ExperimentSpec<'_>, r: &mut AnalysisReport) {
    let sched = &exp.schedule;
    if sched.claims.is_empty() {
        r.push(
            Diagnostic::new(
                DiagCode::MalformedSlotTable,
                Severity::Error,
                "the slot table is empty — no component can ever transmit",
            )
            .suggest("claim at least one slot per component"),
        );
        return;
    }
    // Collisions: the TDMA premise is exactly one owner per slot.
    let mut owners_of: BTreeMap<u16, Vec<_>> = BTreeMap::new();
    for (slot, node) in &sched.claims {
        owners_of.entry(*slot).or_default().push(*node);
    }
    for (slot, owners) in &owners_of {
        if owners.len() > 1 {
            let mut d = Diagnostic::new(
                DiagCode::SlotCollision,
                Severity::Error,
                format!("slot {slot} is claimed by {} components", owners.len()),
            )
            .with(Subject::Slot(*slot))
            .suggest("a TDMA slot has exactly one owner; move one claim to a free slot");
            for o in owners {
                d = d.with(Subject::Component(*o));
            }
            r.push(d);
        }
    }
    // Gaps: a slot index inside the round that nobody claims cannot be
    // represented by the cyclic schedule (and would be dead air anyway).
    let spr = sched.slots_per_round();
    for slot in 0..spr {
        if !owners_of.contains_key(&slot) {
            r.push(
                Diagnostic::new(
                    DiagCode::MalformedSlotTable,
                    Severity::Error,
                    format!("slot {slot} is inside the round but unclaimed"),
                )
                .with(Subject::Slot(slot))
                .suggest("slot indices must form a contiguous 0..slots_per_round range"),
            );
        }
    }
    // Owners must exist.
    let known: BTreeSet<_> = exp.cluster.components.iter().map(|c| c.node).collect();
    for (slot, node) in &sched.claims {
        if !known.contains(node) {
            r.push(
                Diagnostic::new(
                    DiagCode::MalformedSlotTable,
                    Severity::Error,
                    format!("slot {slot} is owned by a component that does not exist"),
                )
                .with(Subject::Slot(*slot))
                .with(Subject::Component(*node)),
            );
        }
    }
    // Every component needs a slot: an unscheduled component never
    // transmits, so its state vnets starve and membership expels it.
    for c in &exp.cluster.components {
        if sched.slots_of(c.node) == 0 {
            r.push(
                Diagnostic::new(
                    DiagCode::UnscheduledComponent,
                    Severity::Error,
                    "component owns no TDMA slot and can never transmit",
                )
                .with(Subject::Component(c.node))
                .suggest("claim a slot for the component or remove it from the cluster"),
            );
        }
    }
}

/// Mean messages per round a job offers on its output network.
fn offered_per_round(job: &JobSpec, round_secs: f64) -> f64 {
    match &job.behavior {
        JobBehavior::EventSender { rate_hz, .. } => rate_hz * round_secs,
        // State-ish behaviors publish exactly once per round.
        _ => 1.0,
    }
}

/// Bandwidth feasibility of `configs` against the workload; `degraded`
/// selects the deployed-configuration severity policy (the defect IS the
/// experiment's ground truth, so overload is a warning, not an error).
fn bandwidth_pass(
    exp: &ExperimentSpec<'_>,
    configs: &[VnetConfig],
    degraded: bool,
    only: Option<&BTreeSet<decos_vnet::VnetId>>,
    r: &mut AnalysisReport,
) {
    let round_secs = exp.round_secs();
    if round_secs <= 0.0 {
        return; // empty schedule already reported
    }
    for cfg in configs {
        if only.is_some_and(|set| !set.contains(&cfg.id)) {
            continue;
        }
        let cap_per_slot = cfg.messages_per_slot() as f64;
        // Per sending component: everything it publishes on this vnet must
        // fit into the segments of the slots it owns per round.
        for comp in &exp.cluster.components {
            let offered: f64 = exp
                .cluster
                .jobs
                .iter()
                .filter(|j| j.host == comp.node && j.behavior.output_vnet() == Some(cfg.id))
                .map(|j| offered_per_round(j, round_secs))
                .sum();
            if offered == 0.0 {
                continue;
            }
            let capacity = cap_per_slot * exp.schedule.slots_of(comp.node) as f64;
            if capacity == 0.0 {
                let (code, sev) = if degraded {
                    (DiagCode::DeployedVnetUnusable, Severity::Warning)
                } else {
                    (DiagCode::VnetBandwidthInfeasible, Severity::Error)
                };
                r.push(
                    Diagnostic::new(
                        code,
                        sev,
                        format!(
                            "segment of {} bytes carries no message, yet {} publishes on it",
                            cfg.bytes_per_slot, comp.node
                        ),
                    )
                    .with(Subject::Vnet(cfg.id))
                    .with(Subject::Component(comp.node))
                    .suggest("allocate at least one message worth of segment bytes"),
                );
            } else if offered > capacity {
                let (code, sev) = if degraded {
                    (DiagCode::DeployedBandwidthDegraded, Severity::Warning)
                } else {
                    (DiagCode::VnetBandwidthInfeasible, Severity::Error)
                };
                r.push(
                    Diagnostic::new(
                        code,
                        sev,
                        format!(
                            "mean offered load {offered:.2} msg/round exceeds the {capacity:.0} \
                             msg/round segment capacity of {}",
                            comp.node
                        ),
                    )
                    .with(Subject::Vnet(cfg.id))
                    .with(Subject::Component(comp.node))
                    .suggest("widen bytes_per_slot, lower the send rate, or claim more slots"),
                );
            } else if !degraded && offered > 0.8 * capacity {
                r.push(
                    Diagnostic::new(
                        DiagCode::VnetBandwidthInfeasible,
                        Severity::Warning,
                        format!(
                            "mean offered load {offered:.2} msg/round uses over 80% of the \
                             {capacity:.0} msg/round capacity — bursts will overflow",
                        ),
                    )
                    .with(Subject::Vnet(cfg.id))
                    .with(Subject::Component(comp.node)),
                );
            }
        }
    }
}

/// Core-network and vnet feasibility plus consumer provisioning.
fn check_bandwidth(exp: &ExperimentSpec<'_>, r: &mut AnalysisReport) {
    bandwidth_pass(exp, &exp.cluster.vnets, false, None, r);

    let round_secs = exp.round_secs();
    let producer_of = |port: decos_vnet::PortId| {
        exp.cluster.jobs.iter().find(|j| j.behavior.output_port() == Some(port))
    };
    for job in &exp.cluster.jobs {
        // Dangling inputs: the consumer starves silently.
        let inputs: Vec<decos_vnet::PortId> = match &job.behavior {
            JobBehavior::Controller { input_src, .. } | JobBehavior::Gateway { input_src, .. } => {
                vec![*input_src]
            }
            JobBehavior::EventConsumer { sources, .. } => sources.clone(),
            JobBehavior::TmrVoter { .. } => Vec::new(), // checked by the TMR pass
            _ => Vec::new(),
        };
        for p in inputs {
            if producer_of(p).is_none() {
                r.push(
                    Diagnostic::new(
                        DiagCode::DanglingInputPort,
                        Severity::Warning,
                        "input port has no producing job — the consumer will starve",
                    )
                    .with(Subject::Job(job.id))
                    .with(Subject::Port(p.0))
                    .suggest("point the input at an existing output port"),
                );
            }
        }
        // Consumer service capacity against each source's offered rate.
        if let JobBehavior::EventConsumer { sources, service_per_round, .. } = &job.behavior {
            for p in sources {
                let Some(src) = producer_of(*p) else { continue };
                let inflow = offered_per_round(src, round_secs);
                if inflow > *service_per_round as f64 {
                    r.push(
                        Diagnostic::new(
                            DiagCode::ConsumerUnderProvisioned,
                            Severity::Warning,
                            format!(
                                "source {} offers {inflow:.2} msg/round but the consumer \
                                 services only {service_per_round} per source",
                                src.id
                            ),
                        )
                        .with(Subject::Job(job.id))
                        .with(Subject::Port(p.0))
                        .suggest("raise service_per_round or lower the sender's rate"),
                    );
                }
            }
        }
    }
}

/// TMR triad checks: completeness, FRU independence, spatial independence.
fn check_tmr(exp: &ExperimentSpec<'_>, r: &mut AnalysisReport) {
    let cluster = exp.cluster;
    for voter in &cluster.jobs {
        let JobBehavior::TmrVoter { vnet_in, inputs, .. } = &voter.behavior else { continue };
        let mut replica_hosts: Vec<(decos_platform::NodeId, decos_platform::JobId)> = Vec::new();
        for port in inputs {
            let Some(producer) =
                cluster.jobs.iter().find(|j| j.behavior.output_port() == Some(*port))
            else {
                r.push(
                    Diagnostic::new(
                        DiagCode::TmrTriadIncomplete,
                        Severity::Error,
                        "voter input port has no producing replica",
                    )
                    .with(Subject::Job(voter.id))
                    .with(Subject::Port(port.0))
                    .suggest("add the third TMR replica or fix the voter's input ports"),
                );
                continue;
            };
            if !matches!(producer.behavior, JobBehavior::TmrReplica { .. }) {
                r.push(
                    Diagnostic::new(
                        DiagCode::TmrTriadIncomplete,
                        Severity::Warning,
                        format!("voter input is produced by {}, not a TMR replica", producer.id),
                    )
                    .with(Subject::Job(voter.id))
                    .with(Subject::Job(producer.id)),
                );
            }
            if producer.behavior.output_vnet() != Some(*vnet_in) {
                r.push(
                    Diagnostic::new(
                        DiagCode::TmrTriadIncomplete,
                        Severity::Error,
                        format!(
                            "replica {} publishes on a different vnet than the voter reads",
                            producer.id
                        ),
                    )
                    .with(Subject::Job(voter.id))
                    .with(Subject::Job(producer.id))
                    .with(Subject::Vnet(*vnet_in)),
                );
            }
            replica_hosts.push((producer.host, producer.id));
        }
        // FRU independence: a component is the fault containment region for
        // hardware faults, so two replicas on one component fail together
        // and the vote degenerates (Fig. 8 spatial independence argument).
        let mut by_host: BTreeMap<decos_platform::NodeId, Vec<decos_platform::JobId>> =
            BTreeMap::new();
        for (host, id) in &replica_hosts {
            by_host.entry(*host).or_default().push(*id);
        }
        for (host, ids) in &by_host {
            if ids.len() > 1 {
                let mut d = Diagnostic::new(
                    DiagCode::TmrTriadSharedFru,
                    Severity::Error,
                    format!("{} TMR replicas share one component — a single hardware fault defeats the vote", ids.len()),
                )
                .with(Subject::Job(voter.id))
                .with(Subject::Component(*host))
                .suggest("host each replica on its own component (distinct FRU)");
                for id in ids {
                    d = d.with(Subject::Job(*id));
                }
                r.push(d);
            }
        }
        // Spatial independence: all replicas inside one proximity zone are
        // vulnerable to a single massive transient (Fig. 8).
        let pos =
            |n: decos_platform::NodeId| cluster.components.get(n.0 as usize).map(|c| c.position);
        let hosts: Vec<_> = by_host.keys().copied().collect();
        if hosts.len() >= 3 {
            let all_close = hosts.iter().all(|a| {
                hosts.iter().all(|b| match (pos(*a), pos(*b)) {
                    (Some(pa), Some(pb)) => pa.distance(&pb) <= exp.ona.zone_radius_m,
                    _ => false,
                })
            });
            if all_close {
                let mut d = Diagnostic::new(
                    DiagCode::TmrTriadSpatiallyClose,
                    Severity::Warning,
                    format!(
                        "all replica hosts lie within one {} m proximity zone — a massive \
                         transient can disturb the whole triad",
                        exp.ona.zone_radius_m
                    ),
                )
                .with(Subject::Job(voter.id))
                .suggest("spread the replicas across spatial zones (e.g. front and rear)");
                for h in &hosts {
                    d = d.with(Subject::Component(*h));
                }
                r.push(d);
            }
        }
        if by_host.contains_key(&voter.host) {
            r.push(
                Diagnostic::new(
                    DiagCode::TmrVoterCohosted,
                    Severity::Warning,
                    "the voter shares its component with a replica — one hardware fault \
                     takes out both a replica and the masking stage",
                )
                .with(Subject::Job(voter.id))
                .with(Subject::Component(voter.host)),
            );
        }
    }
}

/// ONA coverage: every taxonomy class must map to ≥ 1 available pattern.
fn check_coverage(exp: &ExperimentSpec<'_>, r: &mut AnalysisReport) {
    let injected: BTreeSet<FaultClass> = exp.faults.iter().map(FaultSpec::class).collect();
    for class in FaultClass::ALL {
        let patterns: Vec<_> = PATTERN_CATALOG.iter().filter(|p| p.class == class).collect();
        let mut reasons = Vec::new();
        let mut covered = false;
        for p in &patterns {
            match unavailability(p, &exp.ona, exp.rounds) {
                None => covered = true,
                Some(reason) => {
                    reasons.push(format!("{}: {reason}", p.name));
                    r.push(
                        Diagnostic::new(
                            DiagCode::OnaPatternUnavailable,
                            Severity::Info,
                            format!("pattern {} cannot fire: {reason}", p.name),
                        )
                        .with(Subject::Class(class)),
                    );
                }
            }
        }
        if !covered {
            // An uncovered class the campaign actually injects is a
            // structurally meaningless experiment: the ground truth is
            // invisible by construction.
            let sev = if injected.contains(&class) { Severity::Error } else { Severity::Warning };
            r.push(
                Diagnostic::new(
                    DiagCode::UncoveredFaultClass,
                    sev,
                    format!(
                        "no enabled ONA pattern can indicate {class} ({})",
                        if reasons.is_empty() {
                            "the catalog has no pattern for it".to_string()
                        } else {
                            reasons.join("; ")
                        }
                    ),
                )
                .with(Subject::Class(class))
                .suggest("re-enable or re-parameterize a pattern covering this class"),
            );
        }
    }
}

/// Trust transition totality and dynamics sanity.
fn check_trust(exp: &ExperimentSpec<'_>, r: &mut AnalysisReport) {
    let t = &exp.trust;
    let in_unit = |x: f64| x.is_finite() && (0.0..=1.0).contains(&x);
    if !in_unit(t.decay_weight) || !in_unit(t.recovery_per_round) || !in_unit(t.freeze_quality) {
        // Find a witness evidence combination whose successor level is
        // undefined (outside [0,1] or NaN before clamping).
        let witness = FaultClass::ALL
            .iter()
            .find(|c| {
                let hit = t.decay_weight * decos_diagnosis::class_severity(**c);
                !(0.0..=1.0).contains(&hit)
            })
            .copied()
            .unwrap_or(FaultClass::ComponentInternal);
        r.push(
            Diagnostic::new(
                DiagCode::TrustTransitionPartial,
                Severity::Error,
                format!(
                    "trust parameters (decay_weight {}, recovery_per_round {}, \
                     freeze_quality {}) leave the successor level undefined for \
                     {witness} evidence",
                    t.decay_weight, t.recovery_per_round, t.freeze_quality
                ),
            )
            .with(Subject::Class(witness))
            .suggest("all trust parameters must be finite values in [0, 1]"),
        );
        return;
    }
    // The weakest evidence class must still out-pull a quiet round, or a
    // degrading FRU can never ratchet down (Fig. 9 trajectory A).
    let weakest =
        FaultClass::ALL.map(decos_diagnosis::class_severity).into_iter().fold(f64::MAX, f64::min);
    if t.recovery_per_round >= t.decay_weight * weakest && t.decay_weight > 0.0 {
        r.push(
            Diagnostic::new(
                DiagCode::TrustRecoveryOutpacesDecay,
                Severity::Warning,
                format!(
                    "one quiet round recovers {} trust but the weakest evidence class only \
                     removes {:.6} — trajectory A cannot ratchet down",
                    t.recovery_per_round,
                    t.decay_weight * weakest
                ),
            )
            .suggest("lower recovery_per_round or raise decay_weight"),
        );
    }
}

/// Whether a fault kind manifests on a component (hardware) FRU.
fn kind_targets_component(kind: &FaultKind) -> bool {
    kind.class().is_hardware()
}

/// Validates one numeric fault parameter; pushes DA042 on violation.
fn param(
    r: &mut AnalysisReport,
    fault: &FaultSpec,
    name: &str,
    value: f64,
    lo: f64,
    hi: f64,
) -> bool {
    if value.is_finite() && (lo..=hi).contains(&value) {
        true
    } else {
        r.push(
            Diagnostic::new(
                DiagCode::InvalidFaultParameter,
                Severity::Error,
                format!("{} parameter {name} = {value} is outside [{lo}, {hi}]", fault.kind.name()),
            )
            .with(Subject::Fault(fault.id))
            .suggest("fault parameters must be finite and within their physical domain"),
        );
        false
    }
}

/// Campaign validity: targets, onsets, parameter domains, paper ranges.
fn check_campaign(exp: &ExperimentSpec<'_>, r: &mut AnalysisReport) {
    if !(exp.accel.is_finite() && exp.accel > 0.0) {
        r.push(
            Diagnostic::new(
                DiagCode::InvalidFaultParameter,
                Severity::Error,
                format!("acceleration factor {} must be a positive finite number", exp.accel),
            )
            .suggest("use accel = 1.0 for real-time rates"),
        );
    }
    let round_secs = exp.round_secs();
    let horizon_secs = round_secs * exp.rounds as f64;
    let horizon_hours = horizon_secs / 3600.0;
    let slot_secs = exp.cluster.slot_len.as_secs_f64();
    let mut seen_ids: BTreeMap<u32, usize> = BTreeMap::new();

    for f in exp.faults {
        // Duplicate ids corrupt activation-window attribution.
        *seen_ids.entry(f.id).or_insert(0) += 1;

        // Target existence. An unknown job target would panic inside the
        // fault environment's host lookup mid-simulation.
        let target_ok = match f.target {
            FruRef::Component(n) => (n.0 as usize) < exp.cluster.components.len(),
            FruRef::Job(j) => exp.cluster.jobs.iter().any(|job| job.id == j),
        };
        if !target_ok {
            r.push(
                Diagnostic::new(
                    DiagCode::UnknownFaultTarget,
                    Severity::Error,
                    format!("fault targets {} which does not exist in the cluster", f.target),
                )
                .with(Subject::Fault(f.id))
                .suggest("target an existing component or job"),
            );
        }

        // Target kind vs fault kind: a hardware fault aimed at a job FRU
        // (or vice versa) never activates — silently wrong ground truth.
        let wants_component = kind_targets_component(&f.kind);
        let is_component = matches!(f.target, FruRef::Component(_));
        if target_ok && wants_component != is_component {
            r.push(
                Diagnostic::new(
                    DiagCode::TargetKindMismatch,
                    Severity::Warning,
                    format!(
                        "{} is a {} fault but targets {} — it can never manifest there",
                        f.kind.name(),
                        f.kind.class(),
                        f.target
                    ),
                )
                .with(Subject::Fault(f.id))
                .suggest("hardware kinds target components, software/transducer kinds jobs"),
            );
        }

        // Onset inside the horizon.
        if exp.rounds > 0 && f.onset.as_secs_f64() >= horizon_secs {
            r.push(
                Diagnostic::new(
                    DiagCode::OnsetBeyondHorizon,
                    Severity::Error,
                    format!(
                        "onset at {:.3} s lies at or beyond the {:.3} s horizon — the fault \
                         can never manifest",
                        f.onset.as_secs_f64(),
                        horizon_secs
                    ),
                )
                .with(Subject::Fault(f.id))
                .suggest("move the onset before the horizon or extend the horizon"),
            );
        }

        check_kind_params(exp, f, horizon_hours, slot_secs, r);

        // Software design faults on certified safety-critical jobs
        // contradict the §III-E software-fault distribution assumption.
        if matches!(f.kind, FaultKind::Bohrbug { .. } | FaultKind::Heisenbug { .. }) {
            if let FruRef::Job(j) = f.target {
                if let Some(job) = exp.cluster.jobs.iter().find(|job| job.id == j) {
                    if job.criticality == Criticality::SafetyCritical {
                        r.push(
                            Diagnostic::new(
                                DiagCode::SoftwareFaultOnSafetyCritical,
                                Severity::Warning,
                                "software design fault injected into a safety-critical job \
                                 (§III-E assumes ultra-dependable software is certified \
                                 free of design faults)",
                            )
                            .with(Subject::Fault(f.id))
                            .with(Subject::Job(j)),
                        );
                    }
                }
            }
        }

        // Misconfiguration ground truth needs a deployed defect to exist.
        if matches!(f.kind, FaultKind::VnetMisconfiguration)
            && exp.cluster.config_defects.is_empty()
        {
            r.push(
                Diagnostic::new(
                    DiagCode::MisconfigTruthWithoutDefect,
                    Severity::Warning,
                    "VnetMisconfiguration ground truth, but the cluster deploys no \
                     configuration defect — nothing will overflow",
                )
                .with(Subject::Fault(f.id))
                .suggest("push a ConfigDefect into ClusterSpec::config_defects"),
            );
        }
    }
    for (id, n) in seen_ids {
        if n > 1 {
            r.push(
                Diagnostic::new(
                    DiagCode::DuplicateFaultId,
                    Severity::Error,
                    format!(
                        "fault id {id} is used by {n} faults — activation attribution \
                             would be corrupted"
                    ),
                )
                .with(Subject::Fault(id))
                .suggest("give every campaign fault a unique id"),
            );
        }
    }
}

/// Per-kind parameter domains (DA042) and paper-range advisories (DA043).
fn check_kind_params(
    exp: &ExperimentSpec<'_>,
    f: &FaultSpec,
    horizon_hours: f64,
    slot_secs: f64,
    r: &mut AnalysisReport,
) {
    // A per-slot Bernoulli activation with accelerated p > 1 saturates:
    // the effective rate silently stops following the specified one.
    fn rate_saturation(
        r: &mut AnalysisReport,
        f: &FaultSpec,
        accel: f64,
        slot_secs: f64,
        rate_per_hour: f64,
    ) {
        let p = rate_per_hour / 3600.0 * accel * slot_secs;
        if p > 1.0 {
            r.push(
                Diagnostic::new(
                    DiagCode::OutsidePaperRange,
                    Severity::Warning,
                    format!(
                        "accelerated episode probability {p:.2} per slot saturates at 1 — \
                         the effective rate no longer tracks {rate_per_hour}/h × {accel}"
                    ),
                )
                .with(Subject::Fault(f.id))
                .suggest("lower the acceleration factor or the episode rate"),
            );
        }
    }
    match &f.kind {
        FaultKind::EmiBurst { rate_per_hour, duration_ms, center, radius_m } => {
            param(r, f, "rate_per_hour", *rate_per_hour, 0.0, f64::MAX);
            param(r, f, "duration_ms", *duration_ms, f64::MIN_POSITIVE, f64::MAX);
            param(r, f, "radius_m", *radius_m, 0.0, f64::MAX);
            param(r, f, "center.x", center.x, f64::MIN, f64::MAX);
            param(r, f, "center.y", center.y, f64::MIN, f64::MAX);
            if duration_ms.is_finite() && !(1.0..=100.0).contains(duration_ms) {
                r.push(
                    Diagnostic::new(
                        DiagCode::OutsidePaperRange,
                        Severity::Warning,
                        format!(
                            "EMI burst duration {duration_ms} ms is outside the ~1–100 ms \
                             ISO 7637 transient range §IV-A.1a grounds the pattern in"
                        ),
                    )
                    .with(Subject::Fault(f.id)),
                );
            }
            rate_saturation(r, f, exp.accel, slot_secs, *rate_per_hour);
        }
        FaultKind::CosmicRaySeu { rate_per_hour } => {
            param(r, f, "rate_per_hour", *rate_per_hour, 0.0, f64::MAX);
            rate_saturation(r, f, exp.accel, slot_secs, *rate_per_hour);
        }
        FaultKind::StressOutage { rate_per_hour, outage_ms } => {
            param(r, f, "rate_per_hour", *rate_per_hour, 0.0, f64::MAX);
            param(r, f, "outage_ms", *outage_ms, f64::MIN_POSITIVE, f64::MAX);
            if outage_ms.is_finite() && *outage_ms > 50.0 {
                r.push(
                    Diagnostic::new(
                        DiagCode::OutsidePaperRange,
                        Severity::Warning,
                        format!(
                            "stress outage of {outage_ms} ms exceeds the < 50 ms restart \
                             bound cited for steer-by-wire [34]"
                        ),
                    )
                    .with(Subject::Fault(f.id)),
                );
            }
            rate_saturation(r, f, exp.accel, slot_secs, *rate_per_hour);
        }
        FaultKind::ConnectorIntermittent { rate_per_hour, duration_ms }
        | FaultKind::IcTransient { rate_per_hour, duration_ms } => {
            param(r, f, "rate_per_hour", *rate_per_hour, 0.0, f64::MAX);
            param(r, f, "duration_ms", *duration_ms, f64::MIN_POSITIVE, f64::MAX);
            rate_saturation(r, f, exp.accel, slot_secs, *rate_per_hour);
        }
        FaultKind::ConnectorWearout { base_rate_per_hour, growth_per_hour, duration_ms }
        | FaultKind::SolderJointCrack { base_rate_per_hour, growth_per_hour, duration_ms } => {
            param(r, f, "base_rate_per_hour", *base_rate_per_hour, 0.0, f64::MAX);
            param(r, f, "growth_per_hour", *growth_per_hour, 0.0, f64::MAX);
            param(r, f, "duration_ms", *duration_ms, f64::MIN_POSITIVE, f64::MAX);
            rate_saturation(
                r,
                f,
                exp.accel,
                slot_secs,
                base_rate_per_hour + growth_per_hour * horizon_hours,
            );
        }
        FaultKind::PcbCrack { base_rate_per_hour, growth_per_hour, outage_ms } => {
            param(r, f, "base_rate_per_hour", *base_rate_per_hour, 0.0, f64::MAX);
            param(r, f, "growth_per_hour", *growth_per_hour, 0.0, f64::MAX);
            param(r, f, "outage_ms", *outage_ms, f64::MIN_POSITIVE, f64::MAX);
            rate_saturation(
                r,
                f,
                exp.accel,
                slot_secs,
                base_rate_per_hour + growth_per_hour * horizon_hours,
            );
        }
        FaultKind::QuartzDegradation { drift_ppm_per_hour } => {
            param(r, f, "drift_ppm_per_hour", *drift_ppm_per_hour, 0.0, f64::MAX);
        }
        FaultKind::IcPermanent { after_hours } => {
            param(r, f, "after_hours", *after_hours, 0.0, f64::MAX);
        }
        FaultKind::CapacitorAging { bias_per_hour } => {
            param(r, f, "bias_per_hour", *bias_per_hour, f64::MIN, f64::MAX);
        }
        FaultKind::PowerSupplyMarginal { rate_per_hour, outage_ms } => {
            param(r, f, "rate_per_hour", *rate_per_hour, 0.0, f64::MAX);
            param(r, f, "outage_ms", *outage_ms, f64::MIN_POSITIVE, f64::MAX);
            rate_saturation(r, f, exp.accel, slot_secs, *rate_per_hour);
        }
        FaultKind::VnetMisconfiguration | FaultKind::SensorDead => {}
        FaultKind::Bohrbug { trigger_band, offset } => {
            param(r, f, "trigger_band.0", trigger_band.0, f64::MIN, f64::MAX);
            param(r, f, "trigger_band.1", trigger_band.1, f64::MIN, f64::MAX);
            param(r, f, "offset", *offset, f64::MIN, f64::MAX);
            if trigger_band.0 > trigger_band.1 {
                r.push(
                    Diagnostic::new(
                        DiagCode::InvalidFaultParameter,
                        Severity::Error,
                        format!(
                            "bohrbug trigger band ({}, {}) is empty — the bug never triggers",
                            trigger_band.0, trigger_band.1
                        ),
                    )
                    .with(Subject::Fault(f.id)),
                );
            }
        }
        FaultKind::Heisenbug { prob_per_dispatch, wrong_value, .. } => {
            param(r, f, "prob_per_dispatch", *prob_per_dispatch, 0.0, 1.0);
            param(r, f, "wrong_value", *wrong_value, f64::MIN, f64::MAX);
            if (0.1..=1.0).contains(prob_per_dispatch) {
                r.push(
                    Diagnostic::new(
                        DiagCode::OutsidePaperRange,
                        Severity::Warning,
                        format!(
                            "heisenbug probability {prob_per_dispatch} per dispatch is not \
                             'rare' — Gray [56] characterizes heisenbugs as low-probability"
                        ),
                    )
                    .with(Subject::Fault(f.id)),
                );
            }
        }
        FaultKind::SensorStuck { value } => {
            param(r, f, "value", *value, f64::MIN, f64::MAX);
        }
        FaultKind::SensorDrift { per_hour } => {
            param(r, f, "per_hour", *per_hour, f64::MIN, f64::MAX);
        }
        FaultKind::SensorNoise { std_dev } => {
            param(r, f, "std_dev", *std_dev, 0.0, f64::MAX);
        }
        FaultKind::DiagFrameLoss { loss_prob } => {
            param(r, f, "loss_prob", *loss_prob, 0.0, 1.0);
        }
        FaultKind::DiagFrameCorruption { corrupt_prob } => {
            param(r, f, "corrupt_prob", *corrupt_prob, 0.0, 1.0);
        }
        // Integer-valued kinds: their domains are enforced by the type;
        // their interplay with the horizon and the screens is checked by
        // the dedicated diagnostic-path pass (DA07x).
        FaultKind::DiagFrameDelay { .. } | FaultKind::BabblingObserver { .. } => {}
        FaultKind::DiagComponentCrash { rate_per_hour, outage_ms } => {
            param(r, f, "rate_per_hour", *rate_per_hour, 0.0, f64::MAX);
            param(r, f, "outage_ms", *outage_ms, f64::MIN_POSITIVE, f64::MAX);
            rate_saturation(r, f, exp.accel, slot_secs, *rate_per_hour);
        }
    }
}

/// Diagnostic-path pass (DA07x): faults aimed at the diagnostic machinery
/// itself must still describe a *measurable* degradation experiment.
fn check_diag_path(exp: &ExperimentSpec<'_>, r: &mut AnalysisReport) {
    let n_comps = exp.cluster.components.len();
    // Mirror of `PlausibilityScreen::for_spec`: the per-observer-per-round
    // physical ceiling the rate screen enforces.
    let screen_cap = ((n_comps + exp.cluster.jobs.len()) * n_comps.max(1)) as u32;
    for f in exp.faults {
        match f.kind {
            FaultKind::DiagFrameDelay { delay_rounds }
                if exp.rounds > 0 && u64::from(delay_rounds) >= exp.rounds =>
            {
                r.push(
                    Diagnostic::new(
                        DiagCode::DiagDelayExceedsHorizon,
                        Severity::Error,
                        format!(
                            "diagnostic frames delayed by {delay_rounds} rounds never \
                             arrive within the {}-round horizon",
                            exp.rounds
                        ),
                    )
                    .with(Subject::Fault(f.id))
                    .suggest("shorten the delay or extend the horizon"),
                );
            }
            FaultKind::BabblingObserver { forged_per_round } if forged_per_round <= screen_cap => {
                r.push(
                    Diagnostic::new(
                        DiagCode::DiagBabbleUndetectable,
                        Severity::Info,
                        format!(
                            "babbling observer forges {forged_per_round} frames/round, at \
                             or below the rate-screen ceiling of {screen_cap} — the flood \
                             is admitted as legitimate traffic and never flagged"
                        ),
                    )
                    .with(Subject::Fault(f.id))
                    .suggest("forge more than the screen ceiling to study detection"),
                );
            }
            FaultKind::DiagComponentCrash { rate_per_hour, outage_ms } => {
                // Expected fraction of the horizon spent down; above ~half,
                // the campaign measures the outage, not the diagnosis.
                let down = rate_per_hour * exp.accel / 3600.0 * (outage_ms / 1000.0);
                if down.is_finite() && down >= 0.5 {
                    r.push(
                        Diagnostic::new(
                            DiagCode::DiagCrashDominatesHorizon,
                            Severity::Warning,
                            format!(
                                "diagnostic component expected down {:.0}% of the time — \
                                 verdicts rest on the standby's resync, not on diagnosis",
                                down.min(1.0) * 100.0
                            ),
                        )
                        .with(Subject::Fault(f.id))
                        .suggest("lower the crash rate, the outage, or the acceleration"),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Configuration-defect cross-checks against `deployed_vnets()`.
fn check_config_defects(exp: &ExperimentSpec<'_>, r: &mut AnalysisReport) {
    let cluster = exp.cluster;
    if cluster.config_defects.is_empty() {
        return;
    }
    let mut changed = BTreeSet::new();
    for (vnet, defect) in &cluster.config_defects {
        let Some(correct) = cluster.vnets.iter().find(|v| v.id == *vnet) else {
            r.push(
                Diagnostic::new(
                    DiagCode::DefectUnknownVnet,
                    Severity::Error,
                    "configuration defect names a vnet the cluster does not have",
                )
                .with(Subject::Vnet(*vnet))
                .suggest("point the defect at a configured vnet"),
            );
            continue;
        };
        if defect.apply(correct) == *correct {
            r.push(
                Diagnostic::new(
                    DiagCode::InertConfigDefect,
                    Severity::Warning,
                    format!(
                        "defect {defect:?} leaves {vnet} unchanged — the job borderline \
                         ground truth can never manifest"
                    ),
                )
                .with(Subject::Vnet(*vnet))
                .suggest("use a shrink factor > 1"),
            );
        } else {
            changed.insert(*vnet);
        }
    }
    // Re-run the feasibility math on the configurations actually deployed.
    // Deliberate degradation is the experiment's ground truth, so findings
    // here are warnings: the run is valid, its losses are the point.
    let deployed = cluster.deployed_vnets();
    bandwidth_pass(exp, &deployed, true, Some(&changed), r);
}
