//! Bounded n-diagnosability: can fault F on FRU X be told apart from F'
//! on X' within n rounds, *without running the simulator*?
//!
//! This is the static-analysis analogue of the paper's central
//! maintenance claim — that the integrated architecture pins the faulty
//! FRU instead of producing no-fault-found returns. For each fault
//! hypothesis `(kind, FRU)` the engine derives the n-round **symptom
//! signature**: the set of `(ONA pattern, attributed FRUs)` observations
//! reachable under the cluster's TDMA schedule, detector placement, ONA
//! pattern set and parameters. Two hypotheses whose signatures coincide
//! are observation-equivalent — no maintenance advisor downstream of the
//! ONA bank can distinguish them, whatever the trust dynamics do.
//!
//! The abstract model is the **optimistic envelope** of the runtime
//! (see `decos_diagnosis::model`): every manifestation is observed at
//! the earliest possible round with the highest confidence the matcher
//! can emit. The verdict directions that follow:
//!
//! * [`Verdict::Undetectable`] and [`conviction beyond horizon`][SymptomSignature::conviction_round]
//!   are *sound*: if the optimistic envelope cannot produce an
//!   observation (or conviction), the simulator cannot either.
//! * [`Verdict::Ambiguous`] is conservative for the maintenance claim —
//!   signatures are over-approximated, so a pair is only declared
//!   [`Verdict::Diagnosable`] when even the over-approximations differ.
//!   That ambiguous pairs really collide, and diagnosable pairs really
//!   do not, is validated empirically by the paired-simulation soundness
//!   suite in `crates/decos/tests/diagnosability.rs`.
//!
//! Onset timing is out of scope of the envelope (faults are assumed
//! present from round 1; DA041 lints onsets beyond the horizon).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use decos_diagnosis::model;
use decos_diagnosis::SymptomDomain;
use decos_faults::{FaultClass, FaultKind, FruRef};
use decos_platform::{NodeId, Position};

use crate::coverage::{unavailability, PATTERN_CATALOG};
use crate::experiment::ExperimentSpec;

/// A fault hypothesis: one concrete kind on one FRU.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// The fault kind (carries manifestation parameters, e.g. the EMI
    /// footprint).
    pub kind: FaultKind,
    /// The FRU it is hypothesised on.
    pub fru: FruRef,
    /// The campaign fault id this hypothesis was derived from, when the
    /// scope is a campaign rather than the full class x FRU matrix.
    pub fault_id: Option<u32>,
}

impl Hypothesis {
    /// Hypothesis from a campaign fault.
    #[must_use]
    pub fn of(f: &decos_faults::FaultSpec) -> Self {
        Hypothesis { kind: f.kind.clone(), fru: f.target, fault_id: Some(f.id) }
    }

    /// The maintenance-oriented class.
    #[must_use]
    pub fn class(&self) -> FaultClass {
        self.kind.class()
    }

    /// `kind@FRU` label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}@{}", self.kind.name(), self.fru)
    }
}

/// One reachable observation: a pattern firing with its attribution.
///
/// Equality of signatures is equality of the `(pattern, subjects)` sets;
/// `earliest_round` and `confidence` are derived bounds used for witness
/// traces and conviction estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The ONA pattern that fires.
    pub pattern: &'static str,
    /// The FRUs the pattern attributes the symptom to, sorted.
    pub subjects: Vec<FruRef>,
    /// Earliest round (1-indexed) the firing can happen.
    pub earliest_round: u64,
    /// Highest confidence the matcher attaches to the firing.
    pub confidence: f64,
}

/// The n-round symptom signature of one hypothesis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymptomSignature {
    /// Reachable observations, sorted by `(pattern, subjects)`.
    pub observations: Vec<Observation>,
}

impl SymptomSignature {
    /// No reachable observation at all: the hypothesis is invisible.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The comparison key: the set of `(pattern, subjects)` pairs.
    #[must_use]
    pub fn key(&self) -> BTreeSet<(&'static str, Vec<FruRef>)> {
        self.observations.iter().map(|o| (o.pattern, o.subjects.clone())).collect()
    }

    /// Earliest round at which accumulated evidence can cross the
    /// advisor's conviction threshold, under the optimistic one-firing-
    /// per-round envelope. `None` for an empty signature.
    #[must_use]
    pub fn conviction_round(&self, min_evidence: f64) -> Option<u64> {
        self.observations
            .iter()
            .filter(|o| o.confidence > 0.0)
            .map(|o| {
                let firings = (min_evidence / o.confidence).ceil().max(1.0) as u64;
                o.earliest_round.saturating_add(firings - 1)
            })
            .min()
    }
}

/// One step of an ambiguity witness: a round and slot at which both
/// hypotheses can produce the identical observation.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessStep {
    /// Round of the shared observation (1-indexed).
    pub round: u64,
    /// TDMA slot in which the evidence is observed (the attributed
    /// component's first slot).
    pub slot: u16,
    /// The shared pattern.
    pub pattern: &'static str,
    /// The shared attribution.
    pub subjects: Vec<FruRef>,
}

impl core::fmt::Display for WitnessStep {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{} s{} {}(", self.round, self.slot, self.pattern)?;
        for (i, s) in self.subjects.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

/// The pairwise verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The signatures differ: the pair is distinguishable within the
    /// horizon, at the earliest at `round`.
    Diagnosable {
        /// Earliest round a distinguishing observation can appear.
        round: u64,
    },
    /// The signatures coincide (and are non-empty): observation-
    /// equivalent within n rounds.
    Ambiguous {
        /// Minimal trace of rounds/slots at which the two hypotheses
        /// produce identical observations — one step per shared
        /// observation, in firing order.
        witness: Vec<WitnessStep>,
    },
    /// At least one side produces no observation at all.
    Undetectable,
}

impl Verdict {
    /// Short tag for matrices.
    #[must_use]
    pub fn tag(&self) -> char {
        match self {
            Verdict::Diagnosable { .. } => 'D',
            Verdict::Ambiguous { .. } => 'A',
            Verdict::Undetectable => 'U',
        }
    }
}

/// Verdict for the pair `(hypotheses[a], hypotheses[b])`, `a < b`.
#[derive(Debug, Clone, PartialEq)]
pub struct PairVerdict {
    /// Index of the first hypothesis.
    pub a: usize,
    /// Index of the second hypothesis.
    pub b: usize,
    /// The verdict.
    pub verdict: Verdict,
}

/// Whether confusing the two hypotheses would still lead to the correct
/// maintenance action: same FRU, same class. Ambiguity inside such a
/// pair is observationally real but maintenance-harmless (the advisor
/// pins the same FRU and prescribes the same action either way), so the
/// DA080 lint skips it.
#[must_use]
pub fn maintenance_equivalent(a: &Hypothesis, b: &Hypothesis) -> bool {
    a.fru == b.fru && a.class() == b.class()
}

fn dist(a: Position, b: Position) -> f64 {
    ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt()
}

/// Facts the signature derivation needs per experiment.
struct Model<'a> {
    exp: &'a ExperimentSpec<'a>,
    /// Components that own at least one TDMA slot (can be observed
    /// transmitting).
    scheduled: BTreeSet<NodeId>,
}

impl<'a> Model<'a> {
    fn new(exp: &'a ExperimentSpec<'a>) -> Self {
        let scheduled = exp.schedule.claims.iter().map(|&(_, n)| n).collect();
        Model { exp, scheduled }
    }

    /// Whether symptoms of `node` are observable on the TDMA channel:
    /// the node transmits, and a peer exists to observe it.
    fn comm_observable(&self, node: NodeId) -> bool {
        self.scheduled.contains(&node) && self.scheduled.len() >= 2
    }

    fn host_of(&self, fru: FruRef) -> Option<NodeId> {
        match fru {
            FruRef::Component(n) => Some(n),
            FruRef::Job(j) => self.exp.cluster.jobs.iter().find(|js| js.id == j).map(|js| js.host),
        }
    }

    /// First TDMA slot owned by the component behind `fru` (for witness
    /// rendering; 0 when unresolvable).
    fn slot_of(&self, fru: FruRef) -> u16 {
        self.host_of(fru)
            .and_then(|n| {
                self.exp.schedule.claims.iter().filter(|&&(_, o)| o == n).map(|&(s, _)| s).min()
            })
            .unwrap_or(0)
    }

    /// The spatial footprint of a hypothesis: the components its
    /// manifestation reaches. Point faults reach the target only; an EMI
    /// burst reaches every component within its radius of its centre.
    fn footprint(&self, h: &Hypothesis) -> Vec<NodeId> {
        if let FaultKind::EmiBurst { center, radius_m, .. } = &h.kind {
            let mut zone: Vec<NodeId> = self
                .exp
                .cluster
                .components
                .iter()
                .filter(|c| dist(c.position, *center) <= *radius_m)
                .map(|c| c.node)
                .collect();
            if zone.is_empty() {
                if let FruRef::Component(n) = h.fru {
                    zone.push(n);
                }
            }
            zone.sort_unstable();
            zone
        } else {
            match h.fru {
                FruRef::Component(n) => vec![n],
                FruRef::Job(_) => Vec::new(),
            }
        }
    }

    /// Whether the pattern can fire at all under the ONA parameters and
    /// horizon. `connector-rx` is the rx-side backing evidence of the
    /// connector pattern and shares its (absent) gating.
    fn pattern_available(&self, pattern: &'static str, n: u64) -> bool {
        let gate = if pattern == "connector-rx" { "connector" } else { pattern };
        let Some(info) = PATTERN_CATALOG.iter().find(|p| p.name == gate) else {
            return false;
        };
        if unavailability(info, &self.exp.ona, n).is_some() {
            return false;
        }
        model::earliest_fire_round(pattern, &self.exp.ona).is_some_and(|r| r <= n || n == 0)
    }

    /// Derives the n-round symptom signature of `h`.
    fn signature(&self, h: &Hypothesis, n: u64) -> SymptomSignature {
        let mut obs: Vec<Observation> = Vec::new();
        let mut push = |pattern: &'static str, subjects: Vec<FruRef>| {
            let Some(m) = model::pattern_model(pattern) else { return };
            let Some(earliest) = model::earliest_fire_round(pattern, &self.exp.ona) else {
                return;
            };
            obs.push(Observation {
                pattern,
                subjects,
                earliest_round: earliest,
                confidence: m.confidence,
            });
        };
        let footprint = self.footprint(h);
        for &pattern in model::patterns_for_kind(&h.kind) {
            if !self.pattern_available(pattern, n) {
                continue;
            }
            let domain = model::pattern_model(pattern).map(|m| m.domain);
            match (pattern, domain) {
                // Zone-attributed: one observation naming the whole
                // affected zone, requiring at least two observable
                // members for the spatial correlation.
                ("massive-transient", _) => {
                    let zone: Vec<FruRef> = footprint
                        .iter()
                        .filter(|&&c| self.comm_observable(c))
                        .map(|&c| FruRef::Component(c))
                        .collect();
                    if zone.len() >= 2 {
                        push(pattern, zone);
                    }
                }
                // Per-component comm/sync evidence: one observation per
                // observable footprint member.
                (_, Some(SymptomDomain::Comm | SymptomDomain::Sync)) => {
                    for &c in footprint.iter().filter(|&&c| self.comm_observable(c)) {
                        push(pattern, vec![FruRef::Component(c)]);
                    }
                }
                // Co-host correlation: attributes the hosting component,
                // available only when it hosts jobs of >= 2 DASs (and
                // those outputs are published, i.e. the host transmits).
                ("cohost-correlation", _) => {
                    if let FruRef::Component(host) = h.fru {
                        let dases: BTreeSet<_> = self
                            .exp
                            .cluster
                            .jobs
                            .iter()
                            .filter(|j| j.host == host)
                            .map(|j| j.das)
                            .collect();
                        if dases.len() >= 2 && self.comm_observable(host) {
                            push(pattern, vec![FruRef::Component(host)]);
                        }
                    }
                }
                // Queue-side evidence is detected locally at the
                // affected job's host; no transmission slot required.
                (_, Some(SymptomDomain::Queue)) => {
                    if let FruRef::Job(j) = h.fru {
                        push(pattern, vec![FruRef::Job(j)]);
                    }
                }
                // Job-value evidence: observable where the outputs are
                // published, so the hosting component must transmit.
                (_, Some(SymptomDomain::JobValue)) => match h.fru {
                    FruRef::Job(j) => {
                        let host_tx = self
                            .host_of(FruRef::Job(j))
                            .is_some_and(|hn| self.scheduled.contains(&hn));
                        if host_tx {
                            push(pattern, vec![FruRef::Job(j)]);
                        }
                    }
                    // A component-level value fault (aging conditioning
                    // path) degrades every hosted job. When the co-host
                    // correlation can fire it explains and suppresses
                    // the per-job attribution; otherwise the evidence is
                    // indistinguishable from a per-job transducer fault.
                    FruRef::Component(host) => {
                        let dases: BTreeSet<_> = self
                            .exp
                            .cluster
                            .jobs
                            .iter()
                            .filter(|j| j.host == host)
                            .map(|j| j.das)
                            .collect();
                        let cohost_fires = self.exp.ona.enable_cohost
                            && dases.len() >= 2
                            && self.pattern_available("cohost-correlation", n);
                        if !cohost_fires && self.scheduled.contains(&host) {
                            for j in self.exp.cluster.jobs.iter().filter(|j| j.host == host) {
                                push(pattern, vec![FruRef::Job(j.id)]);
                            }
                        }
                    }
                },
                _ => {}
            }
        }
        obs.sort_by(|x, y| x.pattern.cmp(y.pattern).then_with(|| x.subjects.cmp(&y.subjects)));
        obs.dedup_by(|x, y| x.pattern == y.pattern && x.subjects == y.subjects);
        SymptomSignature { observations: obs }
    }

    /// Compares two signatures.
    fn verdict(&self, sa: &SymptomSignature, sb: &SymptomSignature) -> Verdict {
        if sa.is_empty() || sb.is_empty() {
            return Verdict::Undetectable;
        }
        let (ka, kb) = (sa.key(), sb.key());
        if ka == kb {
            let mut witness: Vec<WitnessStep> = sa
                .observations
                .iter()
                .map(|o| WitnessStep {
                    round: o.earliest_round,
                    slot: self.slot_of(*o.subjects.first().expect("attributed observation")),
                    pattern: o.pattern,
                    subjects: o.subjects.clone(),
                })
                .collect();
            witness.sort_by_key(|w| (w.round, w.slot));
            return Verdict::Ambiguous { witness };
        }
        let round = sa
            .observations
            .iter()
            .filter(|o| !kb.contains(&(o.pattern, o.subjects.clone())))
            .chain(
                sb.observations.iter().filter(|o| !ka.contains(&(o.pattern, o.subjects.clone()))),
            )
            .map(|o| o.earliest_round)
            .min()
            .expect("signatures differ, so a distinguishing observation exists");
        Verdict::Diagnosable { round }
    }
}

/// The result of one diagnosability analysis.
#[derive(Debug, Clone)]
pub struct DiagnosabilityReport {
    /// The horizon the analysis was bounded to.
    pub rounds: u64,
    /// The hypotheses, in scope order.
    pub hypotheses: Vec<Hypothesis>,
    /// `signatures[i]` belongs to `hypotheses[i]`.
    pub signatures: Vec<SymptomSignature>,
    /// Pairwise verdicts over all `a < b`.
    pub pairs: Vec<PairVerdict>,
}

impl DiagnosabilityReport {
    /// The ambiguous pairs.
    pub fn ambiguous(&self) -> impl Iterator<Item = &PairVerdict> {
        self.pairs.iter().filter(|p| matches!(p.verdict, Verdict::Ambiguous { .. }))
    }

    /// Indices of hypotheses with an empty signature.
    pub fn invisible(&self) -> impl Iterator<Item = usize> + '_ {
        self.signatures.iter().enumerate().filter(|(_, s)| s.is_empty()).map(|(i, _)| i)
    }

    /// One-line summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let (mut d, mut a, mut u) = (0usize, 0usize, 0usize);
        for p in &self.pairs {
            match p.verdict {
                Verdict::Diagnosable { .. } => d += 1,
                Verdict::Ambiguous { .. } => a += 1,
                Verdict::Undetectable => u += 1,
            }
        }
        format!(
            "{} hypotheses, {} pairs: {d} diagnosable, {a} ambiguous, {u} undetectable",
            self.hypotheses.len(),
            self.pairs.len()
        )
    }

    /// Human-readable ambiguity matrix, aggregated per fault class, with
    /// the ambiguous pairs and their witnesses listed underneath.
    #[must_use]
    pub fn matrix(&self) -> String {
        const SHORT: [(FaultClass, &str); 6] = [
            (FaultClass::ComponentExternal, "c-ext"),
            (FaultClass::ComponentBorderline, "c-bdl"),
            (FaultClass::ComponentInternal, "c-int"),
            (FaultClass::JobBorderline, "j-bdl"),
            (FaultClass::JobInherentSoftware, "j-sw"),
            (FaultClass::JobInherentTransducer, "j-td"),
        ];
        let idx = |c: FaultClass| SHORT.iter().position(|&(k, _)| k == c).expect("all classes");
        // Worst verdict per class pair: A beats U beats D beats none.
        let mut cells = [[' '; 6]; 6];
        for p in &self.pairs {
            let (i, j) = (idx(self.hypotheses[p.a].class()), idx(self.hypotheses[p.b].class()));
            let t = p.verdict.tag();
            for (r, c) in [(i, j), (j, i)] {
                let cur = cells[r][c];
                let rank = |ch: char| match ch {
                    'A' => 3,
                    'U' => 2,
                    'D' => 1,
                    _ => 0,
                };
                if rank(t) > rank(cur) {
                    cells[r][c] = t;
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "ambiguity matrix ({}, n = {} rounds):", self.summary(), self.rounds);
        let _ = writeln!(
            out,
            "  (worst pairwise verdict per class pair: A ambiguous > U undetectable > D diagnosable)"
        );
        let _ = write!(out, "  {:>7}", "");
        for &(_, s) in &SHORT {
            let _ = write!(out, " {s:>6}");
        }
        let _ = writeln!(out);
        for (r, &(_, s)) in SHORT.iter().enumerate() {
            let _ = write!(out, "  {s:>7}");
            for &cell in &cells[r] {
                let ch = if cell == ' ' { '-' } else { cell };
                let _ = write!(out, " {ch:>6}");
            }
            let _ = writeln!(out);
        }
        let ambiguous: Vec<&PairVerdict> = self.ambiguous().collect();
        if ambiguous.is_empty() {
            let _ = writeln!(out, "  no ambiguous pairs");
        } else {
            let _ = writeln!(out, "  ambiguous pairs ({}):", ambiguous.len());
            for p in ambiguous {
                let (a, b) = (&self.hypotheses[p.a], &self.hypotheses[p.b]);
                let _ = write!(out, "    {} ~ {}", a.label(), b.label());
                if let Verdict::Ambiguous { witness } = &p.verdict {
                    let _ = write!(out, "  witness:");
                    for w in witness {
                        let _ = write!(out, " {w}");
                    }
                }
                let _ = writeln!(out);
            }
        }
        for i in self.invisible() {
            let _ = writeln!(out, "  invisible to the ONA bank: {}", self.hypotheses[i].label());
        }
        out
    }
}

/// The campaign scope: one hypothesis per distinct `(kind, FRU)` among
/// the experiment's faults (two faults of the same kind on the same FRU
/// are trivially observation-equivalent and collapse into one).
#[must_use]
pub fn campaign_hypotheses(exp: &ExperimentSpec<'_>) -> Vec<Hypothesis> {
    let mut seen: BTreeSet<(&'static str, FruRef)> = BTreeSet::new();
    let mut out = Vec::new();
    for f in exp.faults {
        if seen.insert((f.kind.name(), f.target)) {
            out.push(Hypothesis::of(f));
        }
    }
    out
}

/// The full class x FRU scope for `decos-lint --diagnosability`:
/// representative kinds of every (non-diagnostic-path) fault class on
/// every compatible FRU. EMI hypotheses centre the burst on the target
/// component with the ONA zone radius, so the footprint is the target's
/// proximity zone.
#[must_use]
pub fn full_hypotheses(exp: &ExperimentSpec<'_>) -> Vec<Hypothesis> {
    let mut out = Vec::new();
    for c in &exp.cluster.components {
        let comp_kinds = [
            FaultKind::EmiBurst {
                rate_per_hour: 10.0,
                duration_ms: 10.0,
                center: c.position,
                radius_m: exp.ona.zone_radius_m,
            },
            FaultKind::CosmicRaySeu { rate_per_hour: 100.0 },
            FaultKind::StressOutage { rate_per_hour: 10.0, outage_ms: 30.0 },
            FaultKind::ConnectorIntermittent { rate_per_hour: 10.0, duration_ms: 5.0 },
            FaultKind::ConnectorWearout {
                base_rate_per_hour: 1.0,
                growth_per_hour: 0.5,
                duration_ms: 5.0,
            },
            FaultKind::PcbCrack { base_rate_per_hour: 1.0, growth_per_hour: 0.5, outage_ms: 20.0 },
            FaultKind::SolderJointCrack {
                base_rate_per_hour: 1.0,
                growth_per_hour: 0.5,
                duration_ms: 5.0,
            },
            FaultKind::QuartzDegradation { drift_ppm_per_hour: 5.0 },
            FaultKind::IcPermanent { after_hours: 1.0 },
            FaultKind::IcTransient { rate_per_hour: 10.0, duration_ms: 5.0 },
            FaultKind::CapacitorAging { bias_per_hour: 0.5 },
            FaultKind::PowerSupplyMarginal { rate_per_hour: 10.0, outage_ms: 30.0 },
        ];
        for kind in comp_kinds {
            out.push(Hypothesis { kind, fru: FruRef::Component(c.node), fault_id: None });
        }
    }
    for j in &exp.cluster.jobs {
        let job_kinds = [
            FaultKind::VnetMisconfiguration,
            FaultKind::Bohrbug { trigger_band: (0.0, 1.0), offset: 1.0 },
            FaultKind::Heisenbug { prob_per_dispatch: 0.01, drop: false, wrong_value: 0.0 },
            FaultKind::SensorStuck { value: 0.0 },
            FaultKind::SensorDrift { per_hour: 1.0 },
            FaultKind::SensorNoise { std_dev: 1.0 },
            FaultKind::SensorDead,
        ];
        for kind in job_kinds {
            out.push(Hypothesis { kind, fru: FruRef::Job(j.id), fault_id: None });
        }
    }
    out
}

/// Derives the signature of a single hypothesis (exposed for tests and
/// the soundness suite).
#[must_use]
pub fn signature_of(exp: &ExperimentSpec<'_>, h: &Hypothesis, rounds: u64) -> SymptomSignature {
    Model::new(exp).signature(h, rounds)
}

/// The pairwise verdict for two hypotheses (exposed for the soundness
/// suite).
#[must_use]
pub fn pair_verdict(
    exp: &ExperimentSpec<'_>,
    a: &Hypothesis,
    b: &Hypothesis,
    rounds: u64,
) -> Verdict {
    let m = Model::new(exp);
    let (sa, sb) = (m.signature(a, rounds), m.signature(b, rounds));
    m.verdict(&sa, &sb)
}

/// Runs the bounded diagnosability analysis over a hypothesis scope.
/// `rounds = 0` means "no fixed horizon" (evidence floors still apply
/// through their own round requirements, horizon starvation does not).
#[must_use]
pub fn analyze_diagnosability(
    exp: &ExperimentSpec<'_>,
    hypotheses: Vec<Hypothesis>,
    rounds: u64,
) -> DiagnosabilityReport {
    let m = Model::new(exp);
    let signatures: Vec<SymptomSignature> =
        hypotheses.iter().map(|h| m.signature(h, rounds)).collect();
    let mut pairs = Vec::new();
    for a in 0..hypotheses.len() {
        for b in (a + 1)..hypotheses.len() {
            pairs.push(PairVerdict { a, b, verdict: m.verdict(&signatures[a], &signatures[b]) });
        }
    }
    DiagnosabilityReport { rounds, hypotheses, signatures, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ScheduleSpec;
    use decos_platform::fig10;

    fn comp(n: u16) -> FruRef {
        FruRef::Component(NodeId(n))
    }

    fn hyp(kind: FaultKind, fru: FruRef) -> Hypothesis {
        Hypothesis { kind, fru, fault_id: None }
    }

    fn seu(n: u16) -> Hypothesis {
        hyp(FaultKind::CosmicRaySeu { rate_per_hour: 100.0 }, comp(n))
    }

    fn ic(n: u16) -> Hypothesis {
        hyp(FaultKind::IcTransient { rate_per_hour: 100.0, duration_ms: 5.0 }, comp(n))
    }

    fn emi_at(spec: &decos_platform::ClusterSpec, n: u16) -> Hypothesis {
        let center = spec.components[n as usize].position;
        hyp(
            FaultKind::EmiBurst { rate_per_hour: 10.0, duration_ms: 10.0, center, radius_m: 1.5 },
            comp(n),
        )
    }

    #[test]
    fn recurring_external_and_internal_defect_are_ambiguous() {
        // The alpha-count deliberately reads *any* recurrence at one
        // location as repair-requiring; a recurring environmental
        // disturbance at N1 is observation-equivalent to a residual IC
        // defect there — at every horizon that lets the count declare.
        let spec = fig10::reference_spec();
        let exp = ExperimentSpec::new(&spec);
        match pair_verdict(&exp, &seu(1), &ic(1), 4000) {
            Verdict::Ambiguous { witness } => {
                assert!(!witness.is_empty(), "a witness trace is mandatory");
                assert!(witness.iter().all(|w| w.round <= 4000));
                assert!(witness.iter().any(|w| w.pattern == "isolated-transient"));
                assert!(witness.iter().any(|w| w.pattern == "recurring-internal"));
                // Minimality: one step per shared observation.
                let distinct: BTreeSet<_> =
                    witness.iter().map(|w| (w.pattern, w.subjects.clone())).collect();
                assert_eq!(distinct.len(), witness.len());
            }
            v => panic!("expected ambiguity, got {v:?}"),
        }
    }

    #[test]
    fn different_components_are_diagnosable() {
        let spec = fig10::reference_spec();
        let exp = ExperimentSpec::new(&spec);
        match pair_verdict(&exp, &seu(1), &ic(2), 4000) {
            Verdict::Diagnosable { round } => assert!((1..=4000).contains(&round)),
            v => panic!("expected diagnosable, got {v:?}"),
        }
    }

    #[test]
    fn emi_within_one_zone_is_ambiguous_across_it() {
        // fig10: N0 and N1 are ~0.54 m apart — one proximity zone under
        // the default 1.5 m radius. A burst centred on either floods the
        // same zone: the attribution cannot separate them.
        let spec = fig10::reference_spec();
        let exp = ExperimentSpec::new(&spec);
        let (a, b) = (emi_at(&spec, 0), emi_at(&spec, 1));
        match pair_verdict(&exp, &a, &b, 4000) {
            Verdict::Ambiguous { witness } => {
                assert!(witness
                    .iter()
                    .any(|w| w.pattern == "massive-transient"
                        && w.subjects == vec![comp(0), comp(1)]));
            }
            v => panic!("expected zone ambiguity, got {v:?}"),
        }
        // Across zones ({N0,N1} vs {N2,N3}) the footprints differ.
        let c = emi_at(&spec, 2);
        assert!(matches!(pair_verdict(&exp, &a, &c, 4000), Verdict::Diagnosable { .. }));
    }

    #[test]
    fn diag_path_faults_are_invisible() {
        let spec = fig10::reference_spec();
        let exp = ExperimentSpec::new(&spec);
        let h = hyp(FaultKind::DiagFrameLoss { loss_prob: 0.5 }, comp(0));
        assert!(signature_of(&exp, &h, 4000).is_empty());
        assert_eq!(pair_verdict(&exp, &h, &seu(1), 4000), Verdict::Undetectable);
    }

    #[test]
    fn unscheduled_component_is_unobservable() {
        // Remove N1's slot: its comm symptoms can no longer manifest.
        let spec = fig10::reference_spec();
        let mut exp = ExperimentSpec::new(&spec);
        exp.schedule = ScheduleSpec {
            claims: exp.schedule.claims.into_iter().filter(|&(_, n)| n != NodeId(1)).collect(),
        };
        assert!(signature_of(&exp, &seu(1), 4000).is_empty());
        assert!(!signature_of(&exp, &seu(2), 4000).is_empty());
    }

    #[test]
    fn short_horizon_drops_slow_evidence() {
        // Within 10 rounds the alpha-count (3 windows of 50 rounds)
        // cannot declare: the recurring-internal observation vanishes
        // and SEU vs IC defect both shrink to the isolated transient —
        // still ambiguous, but now without the recurring evidence.
        let spec = fig10::reference_spec();
        let exp = ExperimentSpec::new(&spec);
        let sig = signature_of(&exp, &seu(1), 10);
        assert!(sig.observations.iter().all(|o| o.pattern != "recurring-internal"));
        assert!(sig.observations.iter().any(|o| o.pattern == "isolated-transient"));
    }

    #[test]
    fn conviction_round_reflects_confidence_and_floor() {
        let spec = fig10::reference_spec();
        let exp = ExperimentSpec::new(&spec);
        let sig = signature_of(&exp, &seu(1), 4000);
        // Fastest route: isolated-transient (round 1, conf 0.4) needs
        // ceil(3.0 / 0.4) = 8 firings -> round 8; recurring-internal
        // (round 150, conf 0.8) would reach it at 150 + 4 - 1 = 153.
        assert_eq!(sig.conviction_round(3.0), Some(8));
        let h = hyp(FaultKind::QuartzDegradation { drift_ppm_per_hour: 5.0 }, comp(1));
        let sig = signature_of(&exp, &h, 4000);
        // oscillator: round 1, conf 0.85 -> ceil(3/.85) = 4 firings.
        assert_eq!(sig.conviction_round(3.0), Some(4));
    }

    #[test]
    fn capacitor_aging_mimics_transducer_drift_without_cohost() {
        // Prune fig10 so N1 hosts S2 only (one DAS): the co-host
        // correlation cannot fire and the aging conditioning path reads
        // exactly like a drifting transducer of the hosted job.
        let mut spec = fig10::reference_spec();
        spec.jobs.retain(|j| j.host != NodeId(1) || j.name == "S2");
        let exp = ExperimentSpec::new(&spec);
        let hosted: Vec<_> =
            spec.jobs.iter().filter(|j| j.host == NodeId(1)).map(|j| j.id).collect();
        assert_eq!(hosted.len(), 1, "only S2 left on N1");
        let aging = hyp(FaultKind::CapacitorAging { bias_per_hour: 0.5 }, comp(1));
        let drift = hyp(FaultKind::SensorDrift { per_hour: 1.0 }, FruRef::Job(hosted[0]));
        assert!(matches!(pair_verdict(&exp, &aging, &drift, 4000), Verdict::Ambiguous { .. }));
        // On a multi-DAS host the correlation disambiguates.
        let aging0 = hyp(FaultKind::CapacitorAging { bias_per_hour: 0.5 }, comp(0));
        let s0 = signature_of(&exp, &aging0, 4000);
        assert!(s0.observations.iter().any(|o| o.pattern == "cohost-correlation"));
    }

    #[test]
    fn full_matrix_over_fig10_finds_the_zone_ambiguity() {
        let spec = fig10::reference_spec();
        let exp = ExperimentSpec::new(&spec);
        let report = analyze_diagnosability(&exp, full_hypotheses(&exp), 4000);
        assert!(report.ambiguous().count() > 0, "{}", report.summary());
        let emi_pair = report.ambiguous().any(|p| {
            let (a, b) = (&report.hypotheses[p.a], &report.hypotheses[p.b]);
            a.kind.name() == "emi-burst" && b.kind.name() == "emi-burst" && a.fru != b.fru
        });
        assert!(emi_pair, "the {{N0,N1}} zone ambiguity must be found");
        // And the matrix renders with all six classes and the legend.
        let m = report.matrix();
        assert!(m.contains("ambiguity matrix"), "{m}");
        assert!(m.contains("c-ext") && m.contains("j-td"), "{m}");
        assert!(m.contains("ambiguous pairs"), "{m}");
    }

    #[test]
    fn maintenance_equivalence_is_fru_and_class() {
        assert!(maintenance_equivalent(&ic(1), &ic(1)));
        assert!(maintenance_equivalent(
            &ic(1),
            &hyp(FaultKind::PowerSupplyMarginal { rate_per_hour: 1.0, outage_ms: 5.0 }, comp(1))
        ));
        assert!(!maintenance_equivalent(&seu(1), &ic(1)), "external vs internal");
        assert!(!maintenance_equivalent(&ic(1), &ic(2)), "different FRUs");
    }
}
