//! Diagnostics, severities and the analysis report.
//!
//! The analyzer never stops at the first problem: every check appends
//! [`Diagnostic`]s to one [`AnalysisReport`], so a user composing a cluster
//! sees *all* defects of the model at once — the lint experience, applied
//! to an experiment specification instead of source code.

use decos_faults::FaultClass;
use decos_platform::{DasId, JobId, NodeId};
use decos_vnet::VnetId;
use serde::{Deserialize, Serialize};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: worth knowing, never blocks anything.
    Info,
    /// Suspicious but simulable: the experiment runs, results may mislead.
    Warning,
    /// The experiment is structurally broken; runners refuse to simulate.
    Error,
}

impl core::fmt::Display for Severity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// What a diagnostic is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Subject {
    /// A component (hardware FRU).
    Component(NodeId),
    /// A job (software FRU).
    Job(JobId),
    /// A distributed application subsystem.
    Das(DasId),
    /// A virtual network.
    Vnet(VnetId),
    /// A TDMA slot index.
    Slot(u16),
    /// An output port.
    Port(u32),
    /// A campaign fault, by its id.
    Fault(u32),
    /// A fault class of the maintenance-oriented taxonomy.
    Class(FaultClass),
}

impl core::fmt::Display for Subject {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Subject::Component(n) => write!(f, "{n}"),
            Subject::Job(j) => write!(f, "{j}"),
            Subject::Das(d) => write!(f, "{d}"),
            Subject::Vnet(v) => write!(f, "{v}"),
            Subject::Slot(s) => write!(f, "slot {s}"),
            Subject::Port(p) => write!(f, "P{p}"),
            Subject::Fault(id) => write!(f, "fault #{id}"),
            Subject::Class(c) => write!(f, "{c}"),
        }
    }
}

/// Stable diagnostic codes. The `DAxxx` numbering groups by concern:
/// 00x schedule/bandwidth, 01x TMR, 02x ONA coverage, 03x trust dynamics,
/// 04x campaign, 05x configuration defects, 06x structural (the former
/// `SpecError` variants), 07x the diagnostic path itself, 08x static
/// n-diagnosability, 09x persistence/resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DiagCode {
    /// Two claims on the same TDMA slot.
    SlotCollision,
    /// A component owns no slot — it can never transmit.
    UnscheduledComponent,
    /// Empty, gapped, or otherwise unusable slot table.
    MalformedSlotTable,
    /// Mean offered load exceeds a vnet's per-round segment capacity.
    VnetBandwidthInfeasible,
    /// A configuration defect degrades a deployed vnet below its load.
    DeployedBandwidthDegraded,
    /// An event consumer services fewer messages than a source offers.
    ConsumerUnderProvisioned,
    /// An input port that no job produces.
    DanglingInputPort,
    /// Two TMR replicas share a component (common-mode FRU).
    TmrTriadSharedFru,
    /// A voter input without a TMR replica producing it.
    TmrTriadIncomplete,
    /// All replicas of a triad within one spatial proximity zone.
    TmrTriadSpatiallyClose,
    /// The voter is co-hosted with one of its replicas.
    TmrVoterCohosted,
    /// A taxonomy fault class no enabled ONA pattern can indicate.
    UncoveredFaultClass,
    /// An ONA pattern that cannot fire under the given parameters.
    OnaPatternUnavailable,
    /// Trust parameters leave some evidence without a defined successor.
    TrustTransitionPartial,
    /// Quiet-round recovery outpaces the weakest evidence class.
    TrustRecoveryOutpacesDecay,
    /// A fault targets a FRU that does not exist in the cluster.
    UnknownFaultTarget,
    /// A fault onset at or beyond the simulated horizon.
    OnsetBeyondHorizon,
    /// A non-finite, negative or out-of-domain fault parameter.
    InvalidFaultParameter,
    /// A parameter outside the ranges §III-E/§IV ground in field data.
    OutsidePaperRange,
    /// A software design fault injected into a safety-critical job.
    SoftwareFaultOnSafetyCritical,
    /// Misconfiguration ground truth without a deployed config defect.
    MisconfigTruthWithoutDefect,
    /// A fault kind that cannot manifest on its target's FRU type.
    TargetKindMismatch,
    /// Two campaign faults share an id (attribution would be corrupted).
    DuplicateFaultId,
    /// A configuration defect names a vnet the cluster does not have.
    DefectUnknownVnet,
    /// A configuration defect that leaves the configuration unchanged.
    InertConfigDefect,
    /// A deployed vnet whose segment can carry no message at all.
    DeployedVnetUnusable,
    /// Node ids are not exactly `0..n` in order.
    NonContiguousNodeIds,
    /// More than 64 components (membership vector width).
    TooManyComponents,
    /// A job hosted on a component that does not exist.
    UnknownHost,
    /// A job referencing an unknown DAS.
    UnknownDas,
    /// A job referencing an unknown virtual network.
    UnknownVnet,
    /// Two jobs sharing an output port id.
    DuplicatePort,
    /// A job whose criticality disagrees with its DAS.
    CriticalityMismatch,
    /// Two jobs sharing an id.
    DuplicateJob,
    /// Diagnostic-network dimensioning unusable (zero capacity or a queue
    /// shallower than one round of frames).
    InvalidDiagNetConfig,
    /// Diagnostic-component crash downtime dominates the simulated horizon.
    DiagCrashDominatesHorizon,
    /// Diagnostic-frame delay meets or exceeds the short-term horizon.
    DiagDelayExceedsHorizon,
    /// A babbling observer too quiet for the rate screen to ever flag.
    DiagBabbleUndetectable,
    /// Two campaign fault hypotheses whose n-round symptom signatures are
    /// identical — the maintenance advisor cannot tell them apart.
    FaultPairIndistinguishable,
    /// A fault hypothesis that reaches no ONA pattern at all: invisible
    /// to the diagnostic architecture's application-level observers.
    FaultClassInvisibleToOna,
    /// A fault hypothesis whose earliest possible conviction lies beyond
    /// the simulated horizon (the diagnosability analogue of the
    /// DA071/DA072 horizon lints).
    HorizonTooShortForConviction,
    /// A resume was requested against a store whose recorded experiment
    /// hash disagrees with the campaign being run — replaying a journal
    /// under a different cluster, fault set, seed or engine parameters
    /// would silently corrupt the accumulated history.
    StoreSpecMismatch,
}

impl DiagCode {
    /// The stable `DAxxx` code string.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::SlotCollision => "DA001",
            DiagCode::UnscheduledComponent => "DA002",
            DiagCode::MalformedSlotTable => "DA003",
            DiagCode::VnetBandwidthInfeasible => "DA004",
            DiagCode::DeployedBandwidthDegraded => "DA005",
            DiagCode::ConsumerUnderProvisioned => "DA006",
            DiagCode::DanglingInputPort => "DA007",
            DiagCode::TmrTriadSharedFru => "DA010",
            DiagCode::TmrTriadIncomplete => "DA011",
            DiagCode::TmrTriadSpatiallyClose => "DA012",
            DiagCode::TmrVoterCohosted => "DA013",
            DiagCode::UncoveredFaultClass => "DA020",
            DiagCode::OnaPatternUnavailable => "DA021",
            DiagCode::TrustTransitionPartial => "DA030",
            DiagCode::TrustRecoveryOutpacesDecay => "DA031",
            DiagCode::UnknownFaultTarget => "DA040",
            DiagCode::OnsetBeyondHorizon => "DA041",
            DiagCode::InvalidFaultParameter => "DA042",
            DiagCode::OutsidePaperRange => "DA043",
            DiagCode::SoftwareFaultOnSafetyCritical => "DA044",
            DiagCode::MisconfigTruthWithoutDefect => "DA045",
            DiagCode::TargetKindMismatch => "DA046",
            DiagCode::DuplicateFaultId => "DA047",
            DiagCode::DefectUnknownVnet => "DA050",
            DiagCode::InertConfigDefect => "DA051",
            DiagCode::DeployedVnetUnusable => "DA052",
            DiagCode::NonContiguousNodeIds => "DA060",
            DiagCode::TooManyComponents => "DA061",
            DiagCode::UnknownHost => "DA062",
            DiagCode::UnknownDas => "DA063",
            DiagCode::UnknownVnet => "DA064",
            DiagCode::DuplicatePort => "DA065",
            DiagCode::CriticalityMismatch => "DA066",
            DiagCode::DuplicateJob => "DA067",
            DiagCode::InvalidDiagNetConfig => "DA070",
            DiagCode::DiagCrashDominatesHorizon => "DA071",
            DiagCode::DiagDelayExceedsHorizon => "DA072",
            DiagCode::DiagBabbleUndetectable => "DA073",
            DiagCode::FaultPairIndistinguishable => "DA080",
            DiagCode::FaultClassInvisibleToOna => "DA081",
            DiagCode::HorizonTooShortForConviction => "DA082",
            DiagCode::StoreSpecMismatch => "DA090",
        }
    }

    /// The variant name, for human-readable rendering.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DiagCode::SlotCollision => "SlotCollision",
            DiagCode::UnscheduledComponent => "UnscheduledComponent",
            DiagCode::MalformedSlotTable => "MalformedSlotTable",
            DiagCode::VnetBandwidthInfeasible => "VnetBandwidthInfeasible",
            DiagCode::DeployedBandwidthDegraded => "DeployedBandwidthDegraded",
            DiagCode::ConsumerUnderProvisioned => "ConsumerUnderProvisioned",
            DiagCode::DanglingInputPort => "DanglingInputPort",
            DiagCode::TmrTriadSharedFru => "TmrTriadSharedFru",
            DiagCode::TmrTriadIncomplete => "TmrTriadIncomplete",
            DiagCode::TmrTriadSpatiallyClose => "TmrTriadSpatiallyClose",
            DiagCode::TmrVoterCohosted => "TmrVoterCohosted",
            DiagCode::UncoveredFaultClass => "UncoveredFaultClass",
            DiagCode::OnaPatternUnavailable => "OnaPatternUnavailable",
            DiagCode::TrustTransitionPartial => "TrustTransitionPartial",
            DiagCode::TrustRecoveryOutpacesDecay => "TrustRecoveryOutpacesDecay",
            DiagCode::UnknownFaultTarget => "UnknownFaultTarget",
            DiagCode::OnsetBeyondHorizon => "OnsetBeyondHorizon",
            DiagCode::InvalidFaultParameter => "InvalidFaultParameter",
            DiagCode::OutsidePaperRange => "OutsidePaperRange",
            DiagCode::SoftwareFaultOnSafetyCritical => "SoftwareFaultOnSafetyCritical",
            DiagCode::MisconfigTruthWithoutDefect => "MisconfigTruthWithoutDefect",
            DiagCode::TargetKindMismatch => "TargetKindMismatch",
            DiagCode::DuplicateFaultId => "DuplicateFaultId",
            DiagCode::DefectUnknownVnet => "DefectUnknownVnet",
            DiagCode::InertConfigDefect => "InertConfigDefect",
            DiagCode::DeployedVnetUnusable => "DeployedVnetUnusable",
            DiagCode::NonContiguousNodeIds => "NonContiguousNodeIds",
            DiagCode::TooManyComponents => "TooManyComponents",
            DiagCode::UnknownHost => "UnknownHost",
            DiagCode::UnknownDas => "UnknownDas",
            DiagCode::UnknownVnet => "UnknownVnet",
            DiagCode::DuplicatePort => "DuplicatePort",
            DiagCode::CriticalityMismatch => "CriticalityMismatch",
            DiagCode::DuplicateJob => "DuplicateJob",
            DiagCode::InvalidDiagNetConfig => "InvalidDiagNetConfig",
            DiagCode::DiagCrashDominatesHorizon => "DiagCrashDominatesHorizon",
            DiagCode::DiagDelayExceedsHorizon => "DiagDelayExceedsHorizon",
            DiagCode::DiagBabbleUndetectable => "DiagBabbleUndetectable",
            DiagCode::FaultPairIndistinguishable => "FaultPairIndistinguishable",
            DiagCode::FaultClassInvisibleToOna => "FaultClassInvisibleToOna",
            DiagCode::HorizonTooShortForConviction => "HorizonTooShortForConviction",
            DiagCode::StoreSpecMismatch => "StoreSpecMismatch",
        }
    }

    /// Whether this code belongs to the DA080 diagnosability block (the
    /// verdicts a `RunOptions::deny_diagnosability` gate rejects on).
    #[must_use]
    pub fn is_diagnosability(self) -> bool {
        matches!(
            self,
            DiagCode::FaultPairIndistinguishable
                | DiagCode::FaultClassInvisibleToOna
                | DiagCode::HorizonTooShortForConviction
        )
    }

    /// Every variant, in `DAxxx` order. The `code()`/`name()` matches are
    /// exhaustive, so a new variant fails compilation until it is wired
    /// there; the uniqueness test walks this list to catch numbering
    /// collisions when it is.
    pub const ALL: &'static [DiagCode] = &[
        DiagCode::SlotCollision,
        DiagCode::UnscheduledComponent,
        DiagCode::MalformedSlotTable,
        DiagCode::VnetBandwidthInfeasible,
        DiagCode::DeployedBandwidthDegraded,
        DiagCode::ConsumerUnderProvisioned,
        DiagCode::DanglingInputPort,
        DiagCode::TmrTriadSharedFru,
        DiagCode::TmrTriadIncomplete,
        DiagCode::TmrTriadSpatiallyClose,
        DiagCode::TmrVoterCohosted,
        DiagCode::UncoveredFaultClass,
        DiagCode::OnaPatternUnavailable,
        DiagCode::TrustTransitionPartial,
        DiagCode::TrustRecoveryOutpacesDecay,
        DiagCode::UnknownFaultTarget,
        DiagCode::OnsetBeyondHorizon,
        DiagCode::InvalidFaultParameter,
        DiagCode::OutsidePaperRange,
        DiagCode::SoftwareFaultOnSafetyCritical,
        DiagCode::MisconfigTruthWithoutDefect,
        DiagCode::TargetKindMismatch,
        DiagCode::DuplicateFaultId,
        DiagCode::DefectUnknownVnet,
        DiagCode::InertConfigDefect,
        DiagCode::DeployedVnetUnusable,
        DiagCode::NonContiguousNodeIds,
        DiagCode::TooManyComponents,
        DiagCode::UnknownHost,
        DiagCode::UnknownDas,
        DiagCode::UnknownVnet,
        DiagCode::DuplicatePort,
        DiagCode::CriticalityMismatch,
        DiagCode::DuplicateJob,
        DiagCode::InvalidDiagNetConfig,
        DiagCode::DiagCrashDominatesHorizon,
        DiagCode::DiagDelayExceedsHorizon,
        DiagCode::DiagBabbleUndetectable,
        DiagCode::FaultPairIndistinguishable,
        DiagCode::FaultClassInvisibleToOna,
        DiagCode::HorizonTooShortForConviction,
        DiagCode::StoreSpecMismatch,
    ];
}

impl core::fmt::Display for DiagCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity.
    pub severity: Severity,
    /// The model elements this finding is about.
    pub subjects: Vec<Subject>,
    /// Human-readable statement of the problem.
    pub message: String,
    /// How to fix it (empty when there is nothing generic to say).
    pub suggestion: String,
}

impl Diagnostic {
    /// Creates a diagnostic without subjects or suggestion.
    pub fn new(code: DiagCode, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            subjects: Vec::new(),
            message: message.into(),
            suggestion: String::new(),
        }
    }

    /// Appends a subject.
    #[must_use]
    pub fn with(mut self, subject: Subject) -> Self {
        self.subjects.push(subject);
        self
    }

    /// Sets the suggestion.
    #[must_use]
    pub fn suggest(mut self, s: impl Into<String>) -> Self {
        self.suggestion = s.into();
        self
    }
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.code, self.message)?;
        if !self.subjects.is_empty() {
            write!(f, " (")?;
            for (i, s) in self.subjects.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, ")")?;
        }
        if !self.suggestion.is_empty() {
            write!(f, "\n    help: {}", self.suggestion)?;
        }
        Ok(())
    }
}

/// Everything the analyzer found, errors first.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// The findings, sorted by descending severity then by code.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        AnalysisReport::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Sorts findings by descending severity, then by code, keeping the
    /// emission order within each (severity, code) group.
    pub fn finish(&mut self) {
        self.diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(&b.code)));
    }

    /// Whether any error-severity diagnostic is present.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of findings at `severity`.
    #[must_use]
    pub fn count_severity(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Findings with the given code.
    pub fn with_code(&self, code: DiagCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Whether any finding carries the given code.
    #[must_use]
    pub fn contains(&self, code: DiagCode) -> bool {
        self.with_code(code).next().is_some()
    }

    /// One-line summary (`2 errors, 1 warning, 0 notes`).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} errors, {} warnings, {} notes",
            self.count_severity(Severity::Error),
            self.count_severity(Severity::Warning),
            self.count_severity(Severity::Info)
        )
    }
}

impl core::fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "analysis clean: no findings");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(f, "analysis: {}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn codes_are_unique_and_stable() {
        // Walk every variant via DiagCode::ALL: no duplicate DAxxx code
        // strings, no duplicate names, every code well-formed.
        let codes: std::collections::BTreeSet<&str> =
            DiagCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), DiagCode::ALL.len(), "every DiagCode must have a unique DAxxx");
        let names: std::collections::BTreeSet<&str> =
            DiagCode::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), DiagCode::ALL.len(), "every DiagCode must have a unique name");
        let variants: std::collections::BTreeSet<DiagCode> =
            DiagCode::ALL.iter().copied().collect();
        assert_eq!(variants.len(), DiagCode::ALL.len(), "ALL must not repeat a variant");
        for c in DiagCode::ALL {
            let s = c.code();
            assert!(
                s.len() == 5 && s.starts_with("DA") && s[2..].chars().all(|d| d.is_ascii_digit()),
                "{s}: codes are DA followed by three digits"
            );
        }
        // Stable anchors: one per numbering block.
        assert_eq!(DiagCode::SlotCollision.code(), "DA001");
        assert_eq!(DiagCode::TmrTriadSharedFru.code(), "DA010");
        assert_eq!(DiagCode::UncoveredFaultClass.code(), "DA020");
        assert_eq!(DiagCode::TrustTransitionPartial.code(), "DA030");
        assert_eq!(DiagCode::UnknownFaultTarget.code(), "DA040");
        assert_eq!(DiagCode::DefectUnknownVnet.code(), "DA050");
        assert_eq!(DiagCode::NonContiguousNodeIds.code(), "DA060");
        assert_eq!(DiagCode::InvalidDiagNetConfig.code(), "DA070");
        assert_eq!(DiagCode::FaultPairIndistinguishable.code(), "DA080");
        assert_eq!(DiagCode::FaultClassInvisibleToOna.code(), "DA081");
        assert_eq!(DiagCode::HorizonTooShortForConviction.code(), "DA082");
        assert_eq!(DiagCode::StoreSpecMismatch.code(), "DA090");
    }

    #[test]
    fn diagnosability_block_is_exactly_da08x() {
        for c in DiagCode::ALL {
            assert_eq!(
                c.is_diagnosability(),
                c.code().starts_with("DA08"),
                "{}: is_diagnosability must mirror the DA08x numbering",
                c.code()
            );
        }
    }

    #[test]
    fn report_sorts_errors_first() {
        let mut r = AnalysisReport::new();
        r.push(Diagnostic::new(DiagCode::OnaPatternUnavailable, Severity::Info, "i"));
        r.push(Diagnostic::new(DiagCode::SlotCollision, Severity::Error, "e"));
        r.push(Diagnostic::new(DiagCode::TmrVoterCohosted, Severity::Warning, "w"));
        r.finish();
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        assert_eq!(r.diagnostics[2].severity, Severity::Info);
        assert!(r.has_errors());
        assert_eq!(r.summary(), "1 errors, 1 warnings, 1 notes");
    }

    #[test]
    fn display_renders_subjects_and_suggestion() {
        let d = Diagnostic::new(DiagCode::TmrTriadSharedFru, Severity::Error, "shared FRU")
            .with(Subject::Job(JobId(4)))
            .with(Subject::Component(NodeId(1)))
            .suggest("host each replica on its own component");
        let s = d.to_string();
        assert!(s.contains("error[DA010 TmrTriadSharedFru]"), "{s}");
        assert!(s.contains("(J4, N1)"), "{s}");
        assert!(s.contains("help:"), "{s}");
    }
}
