//! The analyzable unit: everything a campaign fixes before slot zero.
//!
//! [`ExperimentSpec`] bundles the cluster, the TDMA slot claims, the ONA
//! and trust parameters, and the fault campaign. The runner derives one
//! from a `Campaign`; the lint CLI builds one with defaults; tests mutate
//! individual fields to provoke specific diagnostics.

use decos_diagnosis::{AdvisorParams, OnaParams, TrustParams};
use decos_faults::FaultSpec;
use decos_platform::{ClusterSpec, NodeId};
use serde::{Deserialize, Serialize};

/// The TDMA slot table as a list of claims `(slot index, owner)`.
///
/// The simulation derives its schedule round-robin (one slot per component,
/// in node order), which is collision-free by construction. The analyzer
/// keeps the claim list explicit so that hand-built or tool-generated
/// tables — where double-booking and gaps *are* expressible — run through
/// the same checks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleSpec {
    /// Slot claims, `(slot index within the round, owning component)`.
    pub claims: Vec<(u16, NodeId)>,
}

impl ScheduleSpec {
    /// The round-robin table `ClusterSim` derives from a cluster spec.
    #[must_use]
    pub fn derived(cluster: &ClusterSpec) -> Self {
        ScheduleSpec {
            claims: cluster
                .components
                .iter()
                .enumerate()
                .map(|(i, c)| (i as u16, c.node))
                .collect(),
        }
    }

    /// Slots per round implied by the claims (highest index + 1).
    #[must_use]
    pub fn slots_per_round(&self) -> u16 {
        self.claims.iter().map(|(s, _)| s.saturating_add(1)).max().unwrap_or(0)
    }

    /// How many slots `node` owns per round.
    #[must_use]
    pub fn slots_of(&self, node: NodeId) -> usize {
        self.claims.iter().filter(|(_, n)| *n == node).count()
    }
}

/// A complete experiment: the closed-world input of [`crate::analyze`].
#[derive(Debug, Clone)]
pub struct ExperimentSpec<'a> {
    /// The cluster under test (possibly carrying configuration defects).
    pub cluster: &'a ClusterSpec,
    /// The TDMA slot table.
    pub schedule: ScheduleSpec,
    /// ONA pattern parameters the diagnostic engine will run with.
    pub ona: OnaParams,
    /// Trust dynamics parameters.
    pub trust: TrustParams,
    /// Maintenance-advisor conviction thresholds (the diagnosability
    /// check's notion of "enough evidence").
    pub advisor: AdvisorParams,
    /// The fault campaign (empty for a fault-free run).
    pub faults: &'a [FaultSpec],
    /// Rate acceleration factor for episodic faults.
    pub accel: f64,
    /// Horizon in TDMA rounds; `0` means "no fixed horizon" (pure lint).
    pub rounds: u64,
}

impl<'a> ExperimentSpec<'a> {
    /// A fault-free experiment with default engine parameters and the
    /// derived round-robin schedule — what `decos-lint` checks.
    #[must_use]
    pub fn new(cluster: &'a ClusterSpec) -> Self {
        ExperimentSpec {
            cluster,
            schedule: ScheduleSpec::derived(cluster),
            ona: OnaParams::default(),
            trust: TrustParams::default(),
            advisor: AdvisorParams::default(),
            faults: &[],
            accel: 1.0,
            rounds: 0,
        }
    }

    /// An experiment carrying a fault campaign over a fixed horizon.
    #[must_use]
    pub fn with_campaign(
        cluster: &'a ClusterSpec,
        faults: &'a [FaultSpec],
        accel: f64,
        rounds: u64,
    ) -> Self {
        ExperimentSpec { faults, accel, rounds, ..ExperimentSpec::new(cluster) }
    }

    /// Round length in seconds implied by the schedule and slot length.
    #[must_use]
    pub fn round_secs(&self) -> f64 {
        self.cluster.slot_len.as_secs_f64() * f64::from(self.schedule.slots_per_round())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decos_platform::fig10;

    #[test]
    fn derived_schedule_is_round_robin() {
        let spec = fig10::reference_spec();
        let s = ScheduleSpec::derived(&spec);
        assert_eq!(s.slots_per_round(), 4);
        for n in 0..4u16 {
            assert_eq!(s.slots_of(NodeId(n)), 1);
        }
    }

    #[test]
    fn empty_schedule_has_zero_slots() {
        let s = ScheduleSpec { claims: Vec::new() };
        assert_eq!(s.slots_per_round(), 0);
    }

    #[test]
    fn round_secs_matches_simulation() {
        let spec = fig10::reference_spec();
        let e = ExperimentSpec::new(&spec);
        assert!((e.round_secs() - 0.004).abs() < 1e-12, "4 slots of 1 ms");
    }
}
