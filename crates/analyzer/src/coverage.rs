//! The ONA pattern catalog: which fault pattern indicates which taxonomy
//! class, in which of the time/value/space dimensions, and under which
//! parameter settings it can fire at all.
//!
//! §V-A defines an ONA as a predicate over the distributed state in the
//! value, time and space domains; Fig. 8 maps patterns to fault classes.
//! The diagnostic argument of the paper implicitly assumes *coverage*:
//! every class of the maintenance-oriented taxonomy (Fig. 6) must manifest
//! in at least one detectable pattern, otherwise faults of that class are
//! structurally invisible to the architecture. This module makes that
//! assumption checkable.

use decos_diagnosis::OnaParams;
use decos_faults::FaultClass;

/// An ONA dimension (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    /// Temporal signature (burst, recurring, increasing frequency).
    Time,
    /// Value signature (corruption, drift, omission content).
    Value,
    /// Spatial signature (proximity zone, single stub, co-hosting).
    Space,
}

impl core::fmt::Display for Dimension {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Dimension::Time => "time",
            Dimension::Value => "value",
            Dimension::Space => "space",
        })
    }
}

/// One pattern of the ONA bank, as the analyzer models it.
#[derive(Debug, Clone, Copy)]
pub struct PatternInfo {
    /// Stable pattern name (matches `PatternMatch::pattern`).
    pub name: &'static str,
    /// The fault class the pattern indicates (Fig. 8).
    pub class: FaultClass,
    /// Dimensions the predicate quantifies over.
    pub dims: &'static [Dimension],
}

use Dimension::{Space, Time, Value};

/// Every pattern the ONA bank implements, in Fig. 8 order.
pub const PATTERN_CATALOG: &[PatternInfo] = &[
    PatternInfo {
        name: "massive-transient",
        class: FaultClass::ComponentExternal,
        dims: &[Time, Value, Space],
    },
    PatternInfo { name: "isolated-transient", class: FaultClass::ComponentExternal, dims: &[Time] },
    PatternInfo { name: "connector", class: FaultClass::ComponentBorderline, dims: &[Time, Space] },
    PatternInfo {
        name: "recurring-internal",
        class: FaultClass::ComponentInternal,
        dims: &[Time, Space],
    },
    PatternInfo { name: "wearout", class: FaultClass::ComponentInternal, dims: &[Time, Value] },
    PatternInfo { name: "oscillator", class: FaultClass::ComponentInternal, dims: &[Time] },
    PatternInfo {
        name: "cohost-correlation",
        class: FaultClass::ComponentInternal,
        dims: &[Space, Value],
    },
    PatternInfo { name: "configuration", class: FaultClass::JobBorderline, dims: &[Value] },
    PatternInfo {
        name: "software-design",
        class: FaultClass::JobInherentSoftware,
        dims: &[Value, Time],
    },
    PatternInfo {
        name: "transducer-stuck",
        class: FaultClass::JobInherentTransducer,
        dims: &[Value],
    },
    PatternInfo {
        name: "transducer-drift",
        class: FaultClass::JobInherentTransducer,
        dims: &[Value],
    },
    PatternInfo {
        name: "transducer-dead",
        class: FaultClass::JobInherentTransducer,
        dims: &[Value],
    },
];

/// Why a pattern cannot fire under `ona` within `rounds` (0 = unbounded),
/// or `None` if it can.
#[must_use]
pub fn unavailability(p: &PatternInfo, ona: &OnaParams, rounds: u64) -> Option<String> {
    let horizon = |needed: u64, what: &str| -> Option<String> {
        if rounds > 0 && needed > rounds {
            Some(format!("{what} needs {needed} rounds but the horizon is {rounds}"))
        } else {
            None
        }
    };
    let alpha_ok = ona.alpha.decay > 0.0
        && ona.alpha.decay <= 1.0
        && ona.alpha.threshold.is_finite()
        && ona.alpha.threshold > 0.0;
    match p.name {
        "massive-transient" => {
            if !ona.enable_spatial {
                Some("the spatial ONA is disabled (enable_spatial = false)".into())
            } else if !(ona.zone_radius_m.is_finite() && ona.zone_radius_m > 0.0) {
                Some(format!("zone radius {} m is not a positive finite number", ona.zone_radius_m))
            } else {
                None
            }
        }
        "isolated-transient" => None,
        "connector" => None,
        "recurring-internal" => {
            if alpha_ok {
                horizon(ona.judgement_rounds as u64, "one judgement interval")
            } else {
                Some(format!(
                    "alpha-count parameters (decay {}, threshold {}) cannot cross the threshold",
                    ona.alpha.decay, ona.alpha.threshold
                ))
            }
        }
        "wearout" => {
            if ona.wearout_slope_min.is_finite() {
                horizon(
                    (ona.wearout_min_windows as u64).saturating_mul(ona.judgement_rounds as u64),
                    "the wearout trend",
                )
            } else {
                Some("the minimum wearout slope is not finite".into())
            }
        }
        "oscillator" => None,
        "cohost-correlation" => {
            if ona.enable_cohost {
                None
            } else {
                Some("the co-host correlation ONA is disabled (enable_cohost = false)".into())
            }
        }
        "configuration" => horizon(ona.overflow_min_windows, "the overflow evidence"),
        "software-design" => horizon(ona.job_min_events, "the job symptom evidence"),
        "transducer-stuck" => {
            if ona.stuck_duty > 0.0 && ona.stuck_duty <= 1.0 {
                horizon(ona.job_min_events, "the job symptom evidence")
            } else {
                Some(format!("stuck duty {} is outside (0, 1]", ona.stuck_duty))
            }
        }
        "transducer-drift" | "transducer-dead" => {
            horizon(ona.job_min_events, "the job symptom evidence")
        }
        other => Some(format!("unknown pattern {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_class_by_default() {
        let ona = OnaParams::default();
        for class in FaultClass::ALL {
            let covered = PATTERN_CATALOG
                .iter()
                .any(|p| p.class == class && unavailability(p, &ona, 0).is_none());
            assert!(covered, "{class} uncovered under default parameters");
        }
    }

    #[test]
    fn disabling_spatial_removes_only_massive_transient() {
        let ona = OnaParams { enable_spatial: false, ..OnaParams::default() };
        let mt = PATTERN_CATALOG.iter().find(|p| p.name == "massive-transient").unwrap();
        assert!(unavailability(mt, &ona, 0).is_some());
        // The class stays covered through the isolated-transient pattern.
        let it = PATTERN_CATALOG.iter().find(|p| p.name == "isolated-transient").unwrap();
        assert!(unavailability(it, &ona, 0).is_none());
    }

    #[test]
    fn short_horizon_starves_evidence_thresholds() {
        let ona = OnaParams::default();
        let cfgp = PATTERN_CATALOG.iter().find(|p| p.name == "configuration").unwrap();
        assert!(unavailability(cfgp, &ona, 2).is_some(), "5 overflow windows need > 2 rounds");
        assert!(unavailability(cfgp, &ona, 100).is_none());
    }

    #[test]
    fn every_pattern_names_at_least_one_dimension() {
        for p in PATTERN_CATALOG {
            assert!(!p.dims.is_empty(), "{} has no dimension", p.name);
        }
    }

    fn named(name: &str) -> &'static PatternInfo {
        PATTERN_CATALOG.iter().find(|p| p.name == name).unwrap_or_else(|| panic!("{name}"))
    }

    fn with_alpha(decay: f64, threshold: f64) -> OnaParams {
        let mut o = OnaParams::default();
        o.alpha.decay = decay;
        o.alpha.threshold = threshold;
        o
    }

    #[test]
    fn unavailability_boundaries_table() {
        // Table-driven boundary cases: (pattern, ona, rounds, expect
        // unavailable). Defaults: judgement_rounds 50, wearout windows 4,
        // overflow windows 5, job events 3.
        let dflt = OnaParams::default;
        let cases: Vec<(&str, OnaParams, u64, bool)> = vec![
            // rounds = 0 means "unbounded": horizon starvation never fires.
            ("recurring-internal", dflt(), 0, false),
            ("wearout", dflt(), 0, false),
            ("configuration", dflt(), 0, false),
            ("software-design", dflt(), 0, false),
            // Off-by-one around each evidence floor.
            ("recurring-internal", dflt(), 49, true),
            ("recurring-internal", dflt(), 50, false),
            ("wearout", dflt(), 199, true),
            ("wearout", dflt(), 200, false),
            ("configuration", dflt(), 4, true),
            ("configuration", dflt(), 5, false),
            ("software-design", dflt(), 2, true),
            ("software-design", dflt(), 3, false),
            ("transducer-stuck", dflt(), 2, true),
            ("transducer-stuck", dflt(), 3, false),
            ("transducer-drift", dflt(), 2, true),
            ("transducer-dead", dflt(), 3, false),
            // Instant patterns survive a one-round horizon.
            ("isolated-transient", dflt(), 1, false),
            ("connector", dflt(), 1, false),
            ("oscillator", dflt(), 1, false),
            ("massive-transient", dflt(), 1, false),
            // Saturated / degenerate parameters kill the pattern outright,
            // regardless of horizon.
            ("recurring-internal", with_alpha(0.9, f64::INFINITY), 0, true),
            ("recurring-internal", with_alpha(0.0, 3.0), 0, true),
            ("wearout", OnaParams { wearout_slope_min: f64::NAN, ..dflt() }, 0, true),
            ("massive-transient", OnaParams { zone_radius_m: 0.0, ..dflt() }, 0, true),
            ("massive-transient", OnaParams { zone_radius_m: f64::INFINITY, ..dflt() }, 0, true),
            ("massive-transient", OnaParams { enable_spatial: false, ..dflt() }, 0, true),
            ("cohost-correlation", OnaParams { enable_cohost: false, ..dflt() }, 0, true),
            ("cohost-correlation", dflt(), 1, false),
            ("transducer-stuck", OnaParams { stuck_duty: 0.0, ..dflt() }, 0, true),
            ("transducer-stuck", OnaParams { stuck_duty: 1.5, ..dflt() }, 0, true),
            ("transducer-stuck", OnaParams { stuck_duty: 1.0, ..dflt() }, 0, false),
        ];
        for (i, (name, ona, rounds, expect_unavailable)) in cases.iter().enumerate() {
            let got = unavailability(named(name), ona, *rounds);
            assert_eq!(
                got.is_some(),
                *expect_unavailable,
                "case {i}: {name} at {rounds} rounds -> {got:?}"
            );
        }
    }

    #[test]
    fn scaled_judgement_interval_moves_the_horizon() {
        // The floors scale with the parameters, not with constants.
        let ona =
            OnaParams { judgement_rounds: 10, wearout_min_windows: 7, ..OnaParams::default() };
        assert!(unavailability(named("recurring-internal"), &ona, 9).is_some());
        assert!(unavailability(named("recurring-internal"), &ona, 10).is_none());
        assert!(unavailability(named("wearout"), &ona, 69).is_some());
        assert!(unavailability(named("wearout"), &ona, 70).is_none());
        let ona = OnaParams { overflow_min_windows: 1, job_min_events: 1, ..OnaParams::default() };
        assert!(unavailability(named("configuration"), &ona, 1).is_none());
        assert!(unavailability(named("software-design"), &ona, 1).is_none());
    }

    #[test]
    fn unknown_pattern_is_always_unavailable() {
        let p = PatternInfo {
            name: "no-such-pattern",
            class: FaultClass::ComponentExternal,
            dims: &[Time],
        };
        assert!(unavailability(&p, &OnaParams::default(), 0).is_some());
    }
}
