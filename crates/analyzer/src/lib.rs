//! # decos-analyzer — static model checking of DECOS experiments
//!
//! A lint-style analysis pass over a complete experiment specification —
//! cluster, TDMA slot table, ONA rule set, trust dynamics and fault
//! campaign — run *before* any slot is simulated. Where the platform's
//! structural validation stops at the first [`decos_platform::SpecError`],
//! the analyzer collects **every** finding into an [`AnalysisReport`] of
//! [`Diagnostic`]s carrying a stable code, a severity, the subjects
//! involved, and a suggestion.
//!
//! The checks encode assumptions of the paper that the type system cannot:
//! the TDMA single-owner premise (DA001), bandwidth feasibility of the
//! communication model (DA004), spatial and FRU independence of TMR triads
//! (DA010–DA013, Fig. 8), ONA coverage of the maintenance-oriented fault
//! taxonomy (DA020, Fig. 6 × Fig. 8), totality of the trust-level
//! transition relation (DA030, Fig. 9), and physical plausibility of the
//! injected fault campaign against the §III-E field data (DA040–DA047).
//!
//! ```
//! use decos_analyzer::{analyze, ExperimentSpec};
//! use decos_platform::fig10;
//!
//! let spec = fig10::reference_spec();
//! let report = analyze(&ExperimentSpec::new(&spec));
//! assert!(!report.has_errors(), "{report}");
//! ```
#![warn(missing_docs)]

pub mod checks;
pub mod coverage;
pub mod diagnosability;
pub mod experiment;
pub mod report;

pub use checks::analyze;
pub use coverage::{unavailability, Dimension, PatternInfo, PATTERN_CATALOG};
pub use diagnosability::{
    analyze_diagnosability, campaign_hypotheses, full_hypotheses, maintenance_equivalent,
    pair_verdict, signature_of, DiagnosabilityReport, Hypothesis, Observation, PairVerdict,
    SymptomSignature, Verdict, WitnessStep,
};
pub use experiment::{ExperimentSpec, ScheduleSpec};
pub use report::{AnalysisReport, DiagCode, Diagnostic, Severity, Subject};
